//! The per-round invariant checker.
//!
//! Each check corresponds to one property of the paper's privacy
//! argument (the crate docs enumerate them). All arithmetic assumes
//! deterministic noise mode (`⌈µ⌉` exactly per draw), which every
//! bundled scenario uses; under honest-but-dynamic deployments the
//! checks are *equalities*, so any drift — a client silently skipping a
//! round, noise not covering a histogram, a dialing round growing a
//! backward pass, a privacy charge out of schedule — fails the
//! simulation immediately with the round it happened in.

use vuvuzela_core::observables::{ConversationObservables, DialingObservables};
use vuvuzela_dp::{compose, ComposedPrivacy, Protocol};

/// A failed invariant: which one, in which round, and what diverged.
#[derive(Clone, Debug)]
pub struct InvariantViolation {
    /// The round being checked (`None` for schedule-level checks).
    pub round: Option<u64>,
    /// Short name of the violated invariant.
    pub invariant: &'static str,
    /// Human-readable expected-vs-got detail.
    pub detail: String,
}

impl core::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.round {
            Some(round) => write!(
                f,
                "invariant '{}' violated in round {round}: {}",
                self.invariant, self.detail
            ),
            None => write!(
                f,
                "invariant '{}' violated: {}",
                self.invariant, self.detail
            ),
        }
    }
}

impl std::error::Error for InvariantViolation {}

fn violation(
    round: impl Into<Option<u64>>,
    invariant: &'static str,
    detail: String,
) -> InvariantViolation {
    InvariantViolation {
        round: round.into(),
        invariant,
        detail,
    }
}

/// The deterministic-mode conversation noise one noising server adds:
/// `(singles, pairs)` with `singles = n1 = ⌈µ⌉` and `pairs = ⌈n2/2⌉`,
/// `n2 = ⌈µ⌉` (Algorithm 2 step 2).
#[must_use]
pub fn deterministic_conversation_noise(mu: f64) -> (u64, u64) {
    let n = mu.ceil() as u64;
    (n, n.div_ceil(2))
}

/// The deterministic-mode dialing noise one server adds per real drop.
#[must_use]
pub fn deterministic_dialing_noise(mu: f64) -> u64 {
    mu.ceil() as u64
}

/// Total onions one noising server injects into a conversation round.
#[must_use]
pub fn conversation_noise_onions(mu: f64) -> u64 {
    let (singles, pairs) = deterministic_conversation_noise(mu);
    singles + 2 * pairs
}

/// Everything needed to check one completed conversation round.
#[derive(Clone, Copy)]
pub struct ConversationRoundCheck<'a> {
    /// Round id.
    pub round: u64,
    /// Online clients that participated.
    pub participants: u64,
    /// Conversation slots per client.
    pub slots: u64,
    /// Pairs of participants in a *mutual* active conversation (both
    /// online, both holding the other as a partner) — the real `m2`.
    pub mutual_pairs: u64,
    /// The histogram the last server published for this round.
    pub observables: &'a ConversationObservables,
    /// `(messages, bytes)` the clients→entry link carried forward.
    pub client_link_forward: (u64, u64),
    /// The wrapped request size every submission must have.
    pub onion_width: u64,
    /// Replies handed back to the entry for this round.
    pub replies: u64,
}

/// Checks invariants 1 (uniform participation) and 2 (noise-covered
/// dead drops) for a conversation round.
///
/// # Errors
///
/// The first violated invariant, with expected-vs-got detail.
pub fn check_conversation_round(
    chain_len: u64,
    conversation_mu: f64,
    c: &ConversationRoundCheck<'_>,
) -> Result<(), InvariantViolation> {
    let submitted = c.participants * c.slots;
    // 1. Every online client submits exactly one onion per slot, all of
    // the single fixed size.
    if c.client_link_forward != (submitted, submitted * c.onion_width) {
        return Err(violation(
            c.round,
            "uniform-participation",
            format!(
                "expected {submitted} submissions x {} bytes on clients->entry, got {:?}",
                c.onion_width, c.client_link_forward
            ),
        ));
    }
    if c.replies != submitted {
        return Err(violation(
            c.round,
            "uniform-participation",
            format!("expected {submitted} replies, got {}", c.replies),
        ));
    }
    // 2. The dead-drop histogram decomposes exactly into the noise
    // recipe plus the scripted real activity.
    let noising = chain_len - 1;
    let (singles, pairs) = deterministic_conversation_noise(conversation_mu);
    let expect_m2 = noising * pairs + c.mutual_pairs;
    let expect_m1 = noising * singles + (submitted - 2 * c.mutual_pairs);
    let expect_total = submitted + noising * (singles + 2 * pairs);
    let obs = c.observables;
    if (obs.m1, obs.m2, obs.m_many, obs.total_requests) != (expect_m1, expect_m2, 0, expect_total) {
        return Err(violation(
            c.round,
            "noise-covered-deaddrops",
            format!(
                "expected (m1, m2, m_many, total) = ({expect_m1}, {expect_m2}, 0, {expect_total}), \
                 got ({}, {}, {}, {})",
                obs.m1, obs.m2, obs.m_many, obs.total_requests
            ),
        ));
    }
    Ok(())
}

/// Everything needed to check one completed dialing round.
#[derive(Clone, Copy)]
pub struct DialingRoundCheck<'a> {
    /// Round id.
    pub round: u64,
    /// Online clients that participated.
    pub participants: u64,
    /// Real invitations the script sent to each drop this round.
    pub real_per_drop: &'a [u64],
    /// Per-drop counts the last server published.
    pub observables: &'a DialingObservables,
    /// `(messages, bytes)` the clients→entry link carried forward.
    pub client_link_forward: (u64, u64),
    /// `(messages, bytes)` the clients→entry link carried backward.
    pub client_link_backward: (u64, u64),
    /// The wrapped dial-request size every submission must have.
    pub onion_width: u64,
    /// Backward-pass stage timings recorded for the round (must be 0).
    pub backward_stages: u64,
}

/// Checks invariants 1–3 for a dialing round: uniform participation,
/// per-drop counts = chain noise + scripted real invitations, and
/// forward-only execution.
///
/// # Errors
///
/// The first violated invariant, with expected-vs-got detail.
pub fn check_dialing_round(
    chain_len: u64,
    dialing_mu: f64,
    c: &DialingRoundCheck<'_>,
) -> Result<(), InvariantViolation> {
    if c.client_link_forward != (c.participants, c.participants * c.onion_width) {
        return Err(violation(
            c.round,
            "uniform-participation",
            format!(
                "expected {} dial requests x {} bytes on clients->entry, got {:?}",
                c.participants, c.onion_width, c.client_link_forward
            ),
        ));
    }
    // 3. Forward-only: no backward stage ran, nothing flowed back.
    if c.backward_stages != 0 || c.client_link_backward != (0, 0) {
        return Err(violation(
            c.round,
            "dialing-forward-only",
            format!(
                "dialing round took a backward pass: {} stages, {:?} on clients->entry",
                c.backward_stages, c.client_link_backward
            ),
        ));
    }
    // 2. Per-drop counts: every server (including the last) adds ⌈µ⌉
    // noise invitations per drop (§5.3), plus the scripted real dials.
    let noise = deterministic_dialing_noise(dialing_mu);
    let expect: Vec<u64> = c
        .real_per_drop
        .iter()
        .map(|&real| real + chain_len * noise)
        .collect();
    if c.observables.counts != expect {
        return Err(violation(
            c.round,
            "noise-covered-deaddrops",
            format!(
                "expected per-drop counts {expect:?}, got {:?}",
                c.observables.counts
            ),
        ));
    }
    let real_total: u64 = c.real_per_drop.iter().sum();
    let expect_noop = c.participants - real_total;
    if c.observables.noop_writes != expect_noop {
        return Err(violation(
            c.round,
            "noise-covered-deaddrops",
            format!(
                "expected {expect_noop} no-op writes, got {}",
                c.observables.noop_writes
            ),
        ));
    }
    Ok(())
}

/// Checks invariant 4: the ledger's composed (ε′, δ′) after charging
/// round `k` of `protocol` strictly exceeds the previous spend in both
/// components and equals an independent Theorem-2 recomputation.
///
/// # Errors
///
/// A `privacy-monotone` violation if the spend failed to grow or
/// diverged from the recomputation.
#[allow(clippy::too_many_arguments)] // the full Theorem-2 parameter set
pub fn check_privacy_charge(
    round: u64,
    protocol: Protocol,
    k: u64,
    mu: f64,
    b: f64,
    d: f64,
    charged: ComposedPrivacy,
    previous: ComposedPrivacy,
) -> Result<(), InvariantViolation> {
    if !(charged.epsilon > previous.epsilon && charged.delta > previous.delta) {
        return Err(violation(
            round,
            "privacy-monotone",
            format!(
                "spend did not grow: ({}, {:e}) after ({}, {:e})",
                charged.epsilon, charged.delta, previous.epsilon, previous.delta
            ),
        ));
    }
    let reference = compose(
        vuvuzela_dp::accounting::round_privacy(protocol, mu, b),
        k,
        d,
    );
    if charged.epsilon != reference.epsilon || charged.delta != reference.delta {
        return Err(violation(
            round,
            "privacy-monotone",
            format!(
                "spend diverged from the planner schedule at k = {k}: \
                 charged ({}, {:e}), recomputed ({}, {:e})",
                charged.epsilon, charged.delta, reference.epsilon, reference.delta
            ),
        ));
    }
    Ok(())
}

/// One tap-observed batch, after canonical reordering: `(round,
/// forward?, sizes)`.
pub type TapBatch = (u64, bool, Vec<usize>);

/// Checks invariant 5 for every batch a [`vuvuzela_adversary::taps::
/// SizeRecorder`] saw on chain link `link` during one schedule: each
/// batch is single-sized with exactly the width its round's kind
/// implies at that chain position, each completed round crossed the
/// link exactly once forward (and, for conversation rounds, once
/// backward), and the batch is exactly `submitted + link·noise` onions
/// strong.
///
/// `rounds` maps each *completed* round id to `(is_conversation,
/// submitted, forward_width, backward_width, noise_per_server)`.
///
/// # Errors
///
/// A `fixed-sizes-under-taps` violation naming the first divergent
/// batch.
pub fn check_tap_sizes(
    link: usize,
    rounds: &std::collections::BTreeMap<u64, TapRoundShape>,
    batches: &[TapBatch],
) -> Result<(), InvariantViolation> {
    use std::collections::BTreeMap;
    let mut seen: BTreeMap<(u64, bool), u64> = BTreeMap::new();
    for (round, forward, sizes) in batches {
        let Some(shape) = rounds.get(round) else {
            // Rounds outside the completed map (aborted schedules are
            // purged before checking) are a harness bug.
            return Err(violation(
                *round,
                "fixed-sizes-under-taps",
                format!("tap on link {link} saw an unscheduled round"),
            ));
        };
        *seen.entry((*round, *forward)).or_insert(0) += 1;
        if !*forward && !shape.is_conversation {
            return Err(violation(
                *round,
                "dialing-forward-only",
                format!("tap on link {link} saw backward traffic for a dialing round"),
            ));
        }
        let want_width = if *forward {
            shape.forward_width
        } else {
            shape.backward_width
        };
        let want_len = shape.submitted + link as u64 * shape.noise_per_server;
        if sizes.len() as u64 != want_len {
            return Err(violation(
                *round,
                "fixed-sizes-under-taps",
                format!(
                    "link {link} {}: expected {want_len} onions, saw {}",
                    direction_name(*forward),
                    sizes.len()
                ),
            ));
        }
        if sizes.iter().any(|&s| s as u64 != want_width) {
            return Err(violation(
                *round,
                "fixed-sizes-under-taps",
                format!(
                    "link {link} {}: expected uniform size {want_width}, saw {:?}",
                    direction_name(*forward),
                    sizes.iter().collect::<std::collections::BTreeSet<_>>()
                ),
            ));
        }
    }
    // Every completed round crossed exactly once per direction it has.
    for (round, shape) in rounds {
        if seen.get(&(*round, true)).copied().unwrap_or(0) != 1 {
            return Err(violation(
                *round,
                "fixed-sizes-under-taps",
                format!("link {link} forward batch count != 1"),
            ));
        }
        let want_back = u64::from(shape.is_conversation);
        if seen.get(&(*round, false)).copied().unwrap_or(0) != want_back {
            return Err(violation(
                *round,
                "fixed-sizes-under-taps",
                format!("link {link} backward batch count != {want_back}"),
            ));
        }
    }
    Ok(())
}

/// The expected shape of one round's traffic at a tapped link.
#[derive(Clone, Copy, Debug)]
pub struct TapRoundShape {
    /// Whether the round has a backward pass.
    pub is_conversation: bool,
    /// Client submissions feeding the round.
    pub submitted: u64,
    /// Expected onion width forward at the tapped link.
    pub forward_width: u64,
    /// Expected reply width backward at the tapped link.
    pub backward_width: u64,
    /// Noise onions each upstream noising server added.
    pub noise_per_server: u64,
}

fn direction_name(forward: bool) -> &'static str {
    if forward {
        "forward"
    } else {
        "backward"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_noise_recipe() {
        assert_eq!(deterministic_conversation_noise(6.0), (6, 3));
        assert_eq!(deterministic_conversation_noise(5.0), (5, 3));
        assert_eq!(conversation_noise_onions(6.0), 12);
        assert_eq!(conversation_noise_onions(5.0), 11);
        assert_eq!(deterministic_dialing_noise(3.0), 3);
    }

    #[test]
    fn conversation_check_accepts_exact_decomposition() {
        // 3 servers, µ=6 → 2 noising servers x (6 singles + 3 pairs);
        // 10 participants, 2 mutual pairs.
        let obs = ConversationObservables {
            m1: 2 * 6 + (10 - 4),
            m2: 2 * 3 + 2,
            m_many: 0,
            total_requests: 10 + 2 * 12,
        };
        let check = ConversationRoundCheck {
            round: 7,
            participants: 10,
            slots: 1,
            mutual_pairs: 2,
            observables: &obs,
            client_link_forward: (10, 10 * 500),
            onion_width: 500,
            replies: 10,
        };
        check_conversation_round(3, 6.0, &check).expect("exact decomposition passes");

        // One missing submission fails invariant 1.
        let short = ConversationRoundCheck {
            client_link_forward: (9, 9 * 500),
            ..check
        };
        let err = check_conversation_round(3, 6.0, &short).expect_err("must fail");
        assert_eq!(err.invariant, "uniform-participation");

        // A histogram off by one fails invariant 2.
        let skew = ConversationObservables {
            m1: obs.m1 + 1,
            ..obs
        };
        let bad = ConversationRoundCheck {
            observables: &skew,
            ..check
        };
        let err = check_conversation_round(3, 6.0, &bad).expect_err("must fail");
        assert_eq!(err.invariant, "noise-covered-deaddrops");
    }

    #[test]
    fn dialing_check_enforces_forward_only() {
        let obs = DialingObservables {
            counts: vec![3 * 3 + 2],
            noop_writes: 6,
        };
        let check = DialingRoundCheck {
            round: 4,
            participants: 8,
            real_per_drop: &[2],
            observables: &obs,
            client_link_forward: (8, 8 * 300),
            client_link_backward: (0, 0),
            onion_width: 300,
            backward_stages: 0,
        };
        check_dialing_round(3, 3.0, &check).expect("passes");

        let backward = DialingRoundCheck {
            client_link_backward: (1, 300),
            ..check
        };
        let err = check_dialing_round(3, 3.0, &backward).expect_err("must fail");
        assert_eq!(err.invariant, "dialing-forward-only");

        let uncovered = DialingObservables {
            counts: vec![2], // no noise reached the drop
            noop_writes: 6,
        };
        let bad = DialingRoundCheck {
            observables: &uncovered,
            ..check
        };
        let err = check_dialing_round(3, 3.0, &bad).expect_err("must fail");
        assert_eq!(err.invariant, "noise-covered-deaddrops");
    }

    #[test]
    fn privacy_charge_must_match_theorem2() {
        let prev = ComposedPrivacy {
            epsilon: 0.0,
            delta: 1e-5,
        };
        let k1 = compose(
            vuvuzela_dp::accounting::round_privacy(Protocol::Conversation, 6.0, 0.3),
            1,
            1e-5,
        );
        check_privacy_charge(0, Protocol::Conversation, 1, 6.0, 0.3, 1e-5, k1, prev)
            .expect("exact charge passes");
        // Charging the wrong k diverges from the recomputation.
        let err = check_privacy_charge(0, Protocol::Conversation, 2, 6.0, 0.3, 1e-5, k1, prev)
            .expect_err("must fail");
        assert_eq!(err.invariant, "privacy-monotone");
        // Non-growing spend fails.
        let err = check_privacy_charge(0, Protocol::Conversation, 1, 6.0, 0.3, 1e-5, k1, k1)
            .expect_err("must fail");
        assert_eq!(err.invariant, "privacy-monotone");
    }

    #[test]
    fn tap_check_validates_widths_and_counts() {
        let mut rounds = std::collections::BTreeMap::new();
        rounds.insert(
            0,
            TapRoundShape {
                is_conversation: true,
                submitted: 4,
                forward_width: 100,
                backward_width: 50,
                noise_per_server: 12,
            },
        );
        let good = vec![(0, true, vec![100; 16]), (0, false, vec![50; 16])];
        check_tap_sizes(1, &rounds, &good).expect("passes");

        let mixed = vec![(0, true, vec![100, 100, 99, 100]), (0, false, vec![50; 16])];
        assert!(check_tap_sizes(1, &rounds, &mixed).is_err());

        let missing = vec![(0, true, vec![100; 16])];
        assert!(
            check_tap_sizes(1, &rounds, &missing).is_err(),
            "no backward batch"
        );
    }
}
