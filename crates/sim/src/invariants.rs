//! The per-round invariant checker.
//!
//! Each check corresponds to one property of the paper's privacy
//! argument (the crate docs enumerate them). The core checks are
//! *bounded*: every noise-dependent count must land in an inclusive
//! `[lo, hi]` window. Under deterministic noise mode (`⌈µ⌉` exactly
//! per draw) the windows collapse to equalities — the historical exact
//! checks [`check_conversation_round`] / [`check_dialing_round`] are
//! thin wrappers passing degenerate bounds — so any drift (a client
//! silently skipping a round, noise not covering a histogram, a
//! dialing round growing a backward pass, a privacy charge out of
//! schedule) fails the simulation immediately with the round it
//! happened in. Under sampled noise mode the simulator derives the
//! windows from the Laplace tail
//! ([`vuvuzela_dp::NoiseDistribution::count_bounds`]) and additionally
//! checks end-of-run *concentration*: the empirical mean of every
//! inferred noise draw must sit within `k·σ/√n` of µ
//! ([`check_noise_concentration`]).

use vuvuzela_core::observables::{ConversationObservables, DialingObservables};
use vuvuzela_dp::{compose, ComposedPrivacy, Protocol};

/// A failed invariant: which one, in which round, and what diverged.
#[derive(Clone, Debug)]
pub struct InvariantViolation {
    /// The round being checked (`None` for schedule-level checks).
    pub round: Option<u64>,
    /// Short name of the violated invariant.
    pub invariant: &'static str,
    /// Human-readable expected-vs-got detail.
    pub detail: String,
}

impl core::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.round {
            Some(round) => write!(
                f,
                "invariant '{}' violated in round {round}: {}",
                self.invariant, self.detail
            ),
            None => write!(
                f,
                "invariant '{}' violated: {}",
                self.invariant, self.detail
            ),
        }
    }
}

impl std::error::Error for InvariantViolation {}

fn violation(
    round: impl Into<Option<u64>>,
    invariant: &'static str,
    detail: String,
) -> InvariantViolation {
    InvariantViolation {
        round: round.into(),
        invariant,
        detail,
    }
}

/// The deterministic-mode conversation noise one noising server adds:
/// `(singles, pairs)` with `n1 = n2 = ⌈µ⌉`, `pairs = ⌊n2/2⌋`, and
/// `singles = n1` plus the odd-n2 leftover request, which forms a
/// singleton drop (Algorithm 2 step 2).
#[must_use]
pub fn deterministic_conversation_noise(mu: f64) -> (u64, u64) {
    let n = mu.ceil() as u64;
    (n + n % 2, n / 2)
}

/// The deterministic-mode dialing noise one server adds per real drop.
#[must_use]
pub fn deterministic_dialing_noise(mu: f64) -> u64 {
    mu.ceil() as u64
}

/// Total onions one noising server injects into a conversation round.
#[must_use]
pub fn conversation_noise_onions(mu: f64) -> u64 {
    let (singles, pairs) = deterministic_conversation_noise(mu);
    singles + 2 * pairs
}

/// Everything needed to check one completed conversation round.
#[derive(Clone, Copy)]
pub struct ConversationRoundCheck<'a> {
    /// Round id.
    pub round: u64,
    /// Online clients that participated.
    pub participants: u64,
    /// Conversation slots per client.
    pub slots: u64,
    /// Pairs of participants in a *mutual* active conversation (both
    /// online, both holding the other as a partner) — the real `m2`.
    pub mutual_pairs: u64,
    /// The histogram the last server published for this round.
    pub observables: &'a ConversationObservables,
    /// `(messages, bytes)` the clients→entry link carried forward.
    pub client_link_forward: (u64, u64),
    /// The wrapped request size every submission must have.
    pub onion_width: u64,
    /// Replies handed back to the entry for this round.
    pub replies: u64,
}

/// Checks invariants 1 (uniform participation) and 2 (noise-covered
/// dead drops) for a conversation round in deterministic noise mode:
/// degenerate-bound wrapper over [`check_conversation_round_bounded`].
///
/// # Errors
///
/// The first violated invariant, with expected-vs-got detail.
pub fn check_conversation_round(
    chain_len: u64,
    conversation_mu: f64,
    c: &ConversationRoundCheck<'_>,
) -> Result<(), InvariantViolation> {
    let (singles, pairs) = deterministic_conversation_noise(conversation_mu);
    check_conversation_round_bounded(chain_len, (singles, singles), (pairs, pairs), c)
}

/// Checks invariants 1 and 2 for a conversation round with inclusive
/// per-noising-server draw bounds: `singles = [lo, hi]` on each
/// server's singleton count (n1 plus the odd-n2 leftover), `pairs =
/// [lo, hi]` on each ⌊n2/2⌋ pair count. Participation
/// (submission count, onion width, reply count) stays exact — it is
/// noise-free arithmetic — while the histogram decomposition is checked
/// against the windows; deterministic mode passes `lo == hi`.
///
/// # Errors
///
/// The first violated invariant, with expected-vs-got detail.
pub fn check_conversation_round_bounded(
    chain_len: u64,
    singles: (u64, u64),
    pairs: (u64, u64),
    c: &ConversationRoundCheck<'_>,
) -> Result<(), InvariantViolation> {
    check_conversation_participation(c)?;
    check_conversation_histogram(chain_len, singles, pairs, c)
}

/// Invariant 1 alone for a conversation round: every online client
/// submitted exactly one onion per slot of the single fixed size, and
/// got exactly one reply back. Split out so tolerant-mode runs can
/// grade participation and histogram coverage independently — a
/// tampered round often breaks both, and the soak annotations must see
/// both trips, not just the first.
///
/// # Errors
///
/// A `uniform-participation` violation.
pub fn check_conversation_participation(
    c: &ConversationRoundCheck<'_>,
) -> Result<(), InvariantViolation> {
    let submitted = c.participants * c.slots;
    if c.client_link_forward != (submitted, submitted * c.onion_width) {
        return Err(violation(
            c.round,
            "uniform-participation",
            format!(
                "expected {submitted} submissions x {} bytes on clients->entry, got {:?}",
                c.onion_width, c.client_link_forward
            ),
        ));
    }
    if c.replies != submitted {
        return Err(violation(
            c.round,
            "uniform-participation",
            format!("expected {submitted} replies, got {}", c.replies),
        ));
    }
    Ok(())
}

/// Invariant 2 alone for a conversation round: the dead-drop histogram
/// decomposes into the noise recipe plus the scripted real activity,
/// with every noise draw in its inclusive window (degenerate in
/// deterministic mode).
///
/// # Errors
///
/// A `noise-covered-deaddrops` violation.
pub fn check_conversation_histogram(
    chain_len: u64,
    singles: (u64, u64),
    pairs: (u64, u64),
    c: &ConversationRoundCheck<'_>,
) -> Result<(), InvariantViolation> {
    let submitted = c.participants * c.slots;
    let noising = chain_len - 1;
    let base_m1 = submitted - 2 * c.mutual_pairs;
    let m1 = (base_m1 + noising * singles.0, base_m1 + noising * singles.1);
    let m2 = (
        c.mutual_pairs + noising * pairs.0,
        c.mutual_pairs + noising * pairs.1,
    );
    let total = (
        submitted + noising * (singles.0 + 2 * pairs.0),
        submitted + noising * (singles.1 + 2 * pairs.1),
    );
    let obs = c.observables;
    let outside = |got: u64, (lo, hi): (u64, u64)| got < lo || got > hi;
    if obs.m_many != 0
        || outside(obs.m1, m1)
        || outside(obs.m2, m2)
        || outside(obs.total_requests, total)
    {
        return Err(violation(
            c.round,
            "noise-covered-deaddrops",
            format!(
                "expected m1 in [{}, {}], m2 in [{}, {}], m_many 0, total in [{}, {}], \
                 got ({}, {}, {}, {})",
                m1.0,
                m1.1,
                m2.0,
                m2.1,
                total.0,
                total.1,
                obs.m1,
                obs.m2,
                obs.m_many,
                obs.total_requests
            ),
        ));
    }
    Ok(())
}

/// Everything needed to check one completed dialing round.
#[derive(Clone, Copy)]
pub struct DialingRoundCheck<'a> {
    /// Round id.
    pub round: u64,
    /// Online clients that participated.
    pub participants: u64,
    /// Real invitations the script sent to each drop this round.
    pub real_per_drop: &'a [u64],
    /// Per-drop counts the last server published.
    pub observables: &'a DialingObservables,
    /// `(messages, bytes)` the clients→entry link carried forward.
    pub client_link_forward: (u64, u64),
    /// `(messages, bytes)` the clients→entry link carried backward.
    pub client_link_backward: (u64, u64),
    /// The wrapped dial-request size every submission must have.
    pub onion_width: u64,
    /// Backward-pass stage timings recorded for the round (must be 0).
    pub backward_stages: u64,
}

/// Checks invariants 1–3 for a dialing round in deterministic noise
/// mode: degenerate-bound wrapper over [`check_dialing_round_bounded`].
///
/// # Errors
///
/// The first violated invariant, with expected-vs-got detail.
pub fn check_dialing_round(
    chain_len: u64,
    dialing_mu: f64,
    c: &DialingRoundCheck<'_>,
) -> Result<(), InvariantViolation> {
    let noise = deterministic_dialing_noise(dialing_mu);
    check_dialing_round_bounded(chain_len, (noise, noise), c)
}

/// Checks invariants 1–3 for a dialing round with an inclusive per-
/// server per-drop draw window `per_draw = [lo, hi]`: uniform
/// participation and forward-only execution stay exact, while each
/// drop's count must land in `real + chain_len·[lo, hi]` (every server,
/// including the last, draws once per drop — §5.3).
///
/// # Errors
///
/// The first violated invariant, with expected-vs-got detail.
pub fn check_dialing_round_bounded(
    chain_len: u64,
    per_draw: (u64, u64),
    c: &DialingRoundCheck<'_>,
) -> Result<(), InvariantViolation> {
    check_dialing_participation(c)?;
    check_dialing_counts(chain_len, per_draw, c)
}

/// Invariants 1 and 3 alone for a dialing round: uniform participation
/// on the client link and forward-only execution. Split out for the
/// same reason as [`check_conversation_participation`].
///
/// # Errors
///
/// A `uniform-participation` or `dialing-forward-only` violation.
pub fn check_dialing_participation(c: &DialingRoundCheck<'_>) -> Result<(), InvariantViolation> {
    if c.client_link_forward != (c.participants, c.participants * c.onion_width) {
        return Err(violation(
            c.round,
            "uniform-participation",
            format!(
                "expected {} dial requests x {} bytes on clients->entry, got {:?}",
                c.participants, c.onion_width, c.client_link_forward
            ),
        ));
    }
    // 3. Forward-only: no backward stage ran, nothing flowed back.
    if c.backward_stages != 0 || c.client_link_backward != (0, 0) {
        return Err(violation(
            c.round,
            "dialing-forward-only",
            format!(
                "dialing round took a backward pass: {} stages, {:?} on clients->entry",
                c.backward_stages, c.client_link_backward
            ),
        ));
    }
    Ok(())
}

/// Invariant 2 alone for a dialing round: per-drop counts and no-op
/// writes against the per-server draw window.
///
/// # Errors
///
/// A `noise-covered-deaddrops` violation.
pub fn check_dialing_counts(
    chain_len: u64,
    per_draw: (u64, u64),
    c: &DialingRoundCheck<'_>,
) -> Result<(), InvariantViolation> {
    // 2. Per-drop counts: real dials plus one in-window draw per server.
    if c.observables.counts.len() != c.real_per_drop.len() {
        return Err(violation(
            c.round,
            "noise-covered-deaddrops",
            format!(
                "expected {} per-drop counts, got {:?}",
                c.real_per_drop.len(),
                c.observables.counts
            ),
        ));
    }
    for (index, (&real, &got)) in c
        .real_per_drop
        .iter()
        .zip(&c.observables.counts)
        .enumerate()
    {
        let lo = real + chain_len * per_draw.0;
        let hi = real + chain_len * per_draw.1;
        if got < lo || got > hi {
            return Err(violation(
                c.round,
                "noise-covered-deaddrops",
                format!("expected drop {index} count in [{lo}, {hi}], got {got}"),
            ));
        }
    }
    let real_total: u64 = c.real_per_drop.iter().sum();
    let expect_noop = c.participants - real_total;
    if c.observables.noop_writes != expect_noop {
        return Err(violation(
            c.round,
            "noise-covered-deaddrops",
            format!(
                "expected {expect_noop} no-op writes, got {}",
                c.observables.noop_writes
            ),
        ));
    }
    Ok(())
}

/// Checks invariant 4: the ledger's composed (ε′, δ′) after charging
/// round `k` of `protocol` strictly exceeds the previous spend in both
/// components and equals an independent Theorem-2 recomputation.
///
/// # Errors
///
/// A `privacy-monotone` violation if the spend failed to grow or
/// diverged from the recomputation.
#[allow(clippy::too_many_arguments)] // the full Theorem-2 parameter set
pub fn check_privacy_charge(
    round: u64,
    protocol: Protocol,
    k: u64,
    mu: f64,
    b: f64,
    d: f64,
    charged: ComposedPrivacy,
    previous: ComposedPrivacy,
) -> Result<(), InvariantViolation> {
    if !(charged.epsilon > previous.epsilon && charged.delta > previous.delta) {
        return Err(violation(
            round,
            "privacy-monotone",
            format!(
                "spend did not grow: ({}, {:e}) after ({}, {:e})",
                charged.epsilon, charged.delta, previous.epsilon, previous.delta
            ),
        ));
    }
    let reference = compose(
        vuvuzela_dp::accounting::round_privacy(protocol, mu, b),
        k,
        d,
    );
    if charged.epsilon != reference.epsilon || charged.delta != reference.delta {
        return Err(violation(
            round,
            "privacy-monotone",
            format!(
                "spend diverged from the planner schedule at k = {k}: \
                 charged ({}, {:e}), recomputed ({}, {:e})",
                charged.epsilon, charged.delta, reference.epsilon, reference.delta
            ),
        ));
    }
    Ok(())
}

/// One tap-observed batch, after canonical reordering: `(round,
/// forward?, sizes)`.
pub type TapBatch = (u64, bool, Vec<usize>);

/// Checks invariant 5 for every batch a [`vuvuzela_adversary::taps::
/// SizeRecorder`] saw on chain link `link` during one schedule: each
/// batch is single-sized with exactly the width its round's kind
/// implies at that chain position, each completed round crossed the
/// link exactly once forward (and, for conversation rounds, once
/// backward), and the batch is `submitted + link·noise` onions strong
/// for an in-window per-server noise draw (exact in deterministic
/// mode, where the shape's `lo == hi`).
///
/// `rounds` maps each *completed* round id to `(is_conversation,
/// submitted, forward_width, backward_width, noise_per_server)`.
///
/// # Errors
///
/// A `fixed-sizes-under-taps` violation naming the first divergent
/// batch.
pub fn check_tap_sizes(
    link: usize,
    rounds: &std::collections::BTreeMap<u64, TapRoundShape>,
    batches: &[TapBatch],
) -> Result<(), InvariantViolation> {
    use std::collections::BTreeMap;
    let mut seen: BTreeMap<(u64, bool), u64> = BTreeMap::new();
    for (round, forward, sizes) in batches {
        let Some(shape) = rounds.get(round) else {
            // Rounds outside the completed map (aborted schedules are
            // purged before checking) are a harness bug.
            return Err(violation(
                *round,
                "fixed-sizes-under-taps",
                format!("tap on link {link} saw an unscheduled round"),
            ));
        };
        *seen.entry((*round, *forward)).or_insert(0) += 1;
        if !*forward && !shape.is_conversation {
            return Err(violation(
                *round,
                "dialing-forward-only",
                format!("tap on link {link} saw backward traffic for a dialing round"),
            ));
        }
        let want_width = if *forward {
            shape.forward_width
        } else {
            shape.backward_width
        };
        let want_lo = shape.submitted + link as u64 * shape.noise_per_server_lo;
        let want_hi = shape.submitted + link as u64 * shape.noise_per_server_hi;
        let len = sizes.len() as u64;
        if len < want_lo || len > want_hi {
            return Err(violation(
                *round,
                "fixed-sizes-under-taps",
                format!(
                    "link {link} {}: expected onion count in [{want_lo}, {want_hi}], saw {len}",
                    direction_name(*forward),
                ),
            ));
        }
        if sizes.iter().any(|&s| s as u64 != want_width) {
            return Err(violation(
                *round,
                "fixed-sizes-under-taps",
                format!(
                    "link {link} {}: expected uniform size {want_width}, saw {:?}",
                    direction_name(*forward),
                    sizes.iter().collect::<std::collections::BTreeSet<_>>()
                ),
            ));
        }
    }
    // Every completed round crossed exactly once per direction it has.
    for (round, shape) in rounds {
        if seen.get(&(*round, true)).copied().unwrap_or(0) != 1 {
            return Err(violation(
                *round,
                "fixed-sizes-under-taps",
                format!("link {link} forward batch count != 1"),
            ));
        }
        let want_back = u64::from(shape.is_conversation);
        if seen.get(&(*round, false)).copied().unwrap_or(0) != want_back {
            return Err(violation(
                *round,
                "fixed-sizes-under-taps",
                format!("link {link} backward batch count != {want_back}"),
            ));
        }
    }
    Ok(())
}

/// The expected shape of one round's traffic at a tapped link.
#[derive(Clone, Copy, Debug)]
pub struct TapRoundShape {
    /// Whether the round has a backward pass.
    pub is_conversation: bool,
    /// Client submissions feeding the round.
    pub submitted: u64,
    /// Expected onion width forward at the tapped link.
    pub forward_width: u64,
    /// Expected reply width backward at the tapped link.
    pub backward_width: u64,
    /// Fewest noise onions each upstream noising server may have added
    /// (equals `noise_per_server_hi` in deterministic mode).
    pub noise_per_server_lo: u64,
    /// Most noise onions each upstream noising server may have added.
    pub noise_per_server_hi: u64,
}

fn direction_name(forward: bool) -> &'static str {
    if forward {
        "forward"
    } else {
        "backward"
    }
}

/// Running sums of every noise draw a sampled-mode run inferred from
/// its observables, for the end-of-run concentration check. Sums are
/// `i128` because tampering can push an inferred draw negative (e.g. a
/// dropped batch deflates `m1` below the noise-free baseline) and the
/// concentration invariant must see that deficit, not saturate it away.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoiseSoakStats {
    /// Single-noise draws inferred: one per noising server per
    /// completed conversation round.
    pub conversation_draws: u64,
    /// Σ (m1 − noise-free baseline) over completed conversation rounds.
    pub singles_sum: i128,
    /// Σ (m2 − mutual pairs) over completed conversation rounds.
    pub pairs_sum: i128,
    /// Dialing draws inferred: one per server per drop per completed
    /// dialing round.
    pub dialing_draws: u64,
    /// Σ (count − real) over every drop of every completed dialing
    /// round.
    pub dialing_sum: i128,
}

impl NoiseSoakStats {
    /// Folds in one completed conversation round: `noising` servers
    /// each drew once, and the histogram implies the given total noise
    /// singles (`m1 −` noise-free baseline) and pairs (`m2 − mutual`).
    pub fn record_conversation(&mut self, noising: u64, singles: i128, pairs: i128) {
        self.conversation_draws += noising;
        self.singles_sum += singles;
        self.pairs_sum += pairs;
    }

    /// Folds in one completed dialing round: each drop's count exceeds
    /// the scripted real dials by the sum of `chain_len` draws.
    pub fn record_dialing(
        &mut self,
        chain_len: u64,
        inferred_per_drop: impl IntoIterator<Item = i128>,
    ) {
        for inferred in inferred_per_drop {
            self.dialing_draws += chain_len;
            self.dialing_sum += inferred;
        }
    }
}

/// Checks the `noise-concentration` invariant for one draw family: the
/// empirical mean of `draws` inferred noise draws summing to `sum` must
/// land in `[µ − bias_lo − k·σ/√n, µ + bias_hi + k·σ/√n]` for
/// `bias = (bias_lo, bias_hi)`. The deterministic biases cover the
/// rounding in each family's recipe: ceiling a draw shifts it up by as
/// much as 1 (singles, dialing), Algorithm 2's `⌊n2/2⌋` pairing shifts
/// the pair count *down* by up to ½ a pair, and the odd leftover adds
/// up to 1 more singleton per draw. Zero draws trivially pass — an
/// all-dialing run has no conversation draws to concentrate.
///
/// # Errors
///
/// A `noise-concentration` violation with the mean and its window.
pub fn check_noise_concentration(
    family: &'static str,
    mu: f64,
    sigma: f64,
    k: f64,
    bias: (f64, f64),
    draws: u64,
    sum: i128,
) -> Result<(), InvariantViolation> {
    if draws == 0 {
        return Ok(());
    }
    let mean = sum as f64 / draws as f64;
    let half_width = k * sigma / (draws as f64).sqrt();
    let lo = mu - bias.0 - half_width;
    let hi = mu + bias.1 + half_width;
    if mean < lo || mean > hi {
        return Err(violation(
            None,
            "noise-concentration",
            format!(
                "{family}: empirical mean {mean:.4} over {draws} draws outside \
                 [{lo:.4}, {hi:.4}] (mu {mu}, sigma {sigma:.4})"
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_noise_recipe() {
        assert_eq!(deterministic_conversation_noise(6.0), (6, 3));
        // Odd ⌈µ⌉: n2 = 5 pairs into ⌊5/2⌋ = 2 drops and the leftover
        // request becomes a 6th singleton; total onions stay n1 + n2.
        assert_eq!(deterministic_conversation_noise(5.0), (6, 2));
        assert_eq!(conversation_noise_onions(6.0), 12);
        assert_eq!(conversation_noise_onions(5.0), 10);
        assert_eq!(deterministic_dialing_noise(3.0), 3);
    }

    #[test]
    fn conversation_check_accepts_exact_decomposition() {
        // 3 servers, µ=6 → 2 noising servers x (6 singles + 3 pairs);
        // 10 participants, 2 mutual pairs.
        let obs = ConversationObservables {
            m1: 2 * 6 + (10 - 4),
            m2: 2 * 3 + 2,
            m_many: 0,
            total_requests: 10 + 2 * 12,
        };
        let check = ConversationRoundCheck {
            round: 7,
            participants: 10,
            slots: 1,
            mutual_pairs: 2,
            observables: &obs,
            client_link_forward: (10, 10 * 500),
            onion_width: 500,
            replies: 10,
        };
        check_conversation_round(3, 6.0, &check).expect("exact decomposition passes");

        // One missing submission fails invariant 1.
        let short = ConversationRoundCheck {
            client_link_forward: (9, 9 * 500),
            ..check
        };
        let err = check_conversation_round(3, 6.0, &short).expect_err("must fail");
        assert_eq!(err.invariant, "uniform-participation");

        // A histogram off by one fails invariant 2.
        let skew = ConversationObservables {
            m1: obs.m1 + 1,
            ..obs
        };
        let bad = ConversationRoundCheck {
            observables: &skew,
            ..check
        };
        let err = check_conversation_round(3, 6.0, &bad).expect_err("must fail");
        assert_eq!(err.invariant, "noise-covered-deaddrops");
    }

    #[test]
    fn dialing_check_enforces_forward_only() {
        let obs = DialingObservables {
            counts: vec![3 * 3 + 2],
            noop_writes: 6,
        };
        let check = DialingRoundCheck {
            round: 4,
            participants: 8,
            real_per_drop: &[2],
            observables: &obs,
            client_link_forward: (8, 8 * 300),
            client_link_backward: (0, 0),
            onion_width: 300,
            backward_stages: 0,
        };
        check_dialing_round(3, 3.0, &check).expect("passes");

        let backward = DialingRoundCheck {
            client_link_backward: (1, 300),
            ..check
        };
        let err = check_dialing_round(3, 3.0, &backward).expect_err("must fail");
        assert_eq!(err.invariant, "dialing-forward-only");

        let uncovered = DialingObservables {
            counts: vec![2], // no noise reached the drop
            noop_writes: 6,
        };
        let bad = DialingRoundCheck {
            observables: &uncovered,
            ..check
        };
        let err = check_dialing_round(3, 3.0, &bad).expect_err("must fail");
        assert_eq!(err.invariant, "noise-covered-deaddrops");
    }

    #[test]
    fn privacy_charge_must_match_theorem2() {
        let prev = ComposedPrivacy {
            epsilon: 0.0,
            delta: 1e-5,
        };
        let k1 = compose(
            vuvuzela_dp::accounting::round_privacy(Protocol::Conversation, 6.0, 0.3),
            1,
            1e-5,
        );
        check_privacy_charge(0, Protocol::Conversation, 1, 6.0, 0.3, 1e-5, k1, prev)
            .expect("exact charge passes");
        // Charging the wrong k diverges from the recomputation.
        let err = check_privacy_charge(0, Protocol::Conversation, 2, 6.0, 0.3, 1e-5, k1, prev)
            .expect_err("must fail");
        assert_eq!(err.invariant, "privacy-monotone");
        // Non-growing spend fails.
        let err = check_privacy_charge(0, Protocol::Conversation, 1, 6.0, 0.3, 1e-5, k1, k1)
            .expect_err("must fail");
        assert_eq!(err.invariant, "privacy-monotone");
    }

    #[test]
    fn tap_check_validates_widths_and_counts() {
        let mut rounds = std::collections::BTreeMap::new();
        rounds.insert(
            0,
            TapRoundShape {
                is_conversation: true,
                submitted: 4,
                forward_width: 100,
                backward_width: 50,
                noise_per_server_lo: 12,
                noise_per_server_hi: 12,
            },
        );
        let good = vec![(0, true, vec![100; 16]), (0, false, vec![50; 16])];
        check_tap_sizes(1, &rounds, &good).expect("passes");

        let mixed = vec![(0, true, vec![100, 100, 99, 100]), (0, false, vec![50; 16])];
        assert!(check_tap_sizes(1, &rounds, &mixed).is_err());

        let missing = vec![(0, true, vec![100; 16])];
        assert!(
            check_tap_sizes(1, &rounds, &missing).is_err(),
            "no backward batch"
        );

        // A non-degenerate noise window accepts any in-range count...
        rounds.get_mut(&0).unwrap().noise_per_server_lo = 10;
        rounds.get_mut(&0).unwrap().noise_per_server_hi = 14;
        let low = vec![(0, true, vec![100; 14]), (0, false, vec![50; 14])];
        check_tap_sizes(1, &rounds, &low).expect("in-window count passes");
        // ...but not one outside it.
        let thin = vec![(0, true, vec![100; 13]), (0, false, vec![50; 14])];
        let err = check_tap_sizes(1, &rounds, &thin).expect_err("must fail");
        assert_eq!(err.invariant, "fixed-sizes-under-taps");
    }

    #[test]
    fn bounded_conversation_check_accepts_windows() {
        // 3 servers, 10 participants, 2 mutual pairs; noise drawn one
        // above / one below the mean per family.
        let obs = ConversationObservables {
            m1: (10 - 4) + 5 + 7,
            m2: 2 + 3 + 4,
            m_many: 0,
            total_requests: 10 + (5 + 7) + 2 * (3 + 4),
        };
        let check = ConversationRoundCheck {
            round: 3,
            participants: 10,
            slots: 1,
            mutual_pairs: 2,
            observables: &obs,
            client_link_forward: (10, 10 * 500),
            onion_width: 500,
            replies: 10,
        };
        check_conversation_round_bounded(3, (4, 8), (2, 5), &check).expect("in-window passes");
        // The same histogram fails a singles window above the draws
        // (m1 = 18 < base 6 + 2 noising servers x lo 7).
        let err =
            check_conversation_round_bounded(3, (7, 8), (2, 5), &check).expect_err("must fail");
        assert_eq!(err.invariant, "noise-covered-deaddrops");
        // Participation stays exact even with loose windows.
        let short = ConversationRoundCheck {
            replies: 9,
            ..check
        };
        let err =
            check_conversation_round_bounded(3, (0, 100), (0, 100), &short).expect_err("must fail");
        assert_eq!(err.invariant, "uniform-participation");
    }

    #[test]
    fn bounded_dialing_check_accepts_windows() {
        let obs = DialingObservables {
            counts: vec![2 + 8, 11],
            noop_writes: 6,
        };
        let check = DialingRoundCheck {
            round: 5,
            participants: 8,
            real_per_drop: &[2, 0],
            observables: &obs,
            client_link_forward: (8, 8 * 300),
            client_link_backward: (0, 0),
            onion_width: 300,
            backward_stages: 0,
        };
        // 3 servers x per-draw window [2, 4] → drop windows [6, 12].
        check_dialing_round_bounded(3, (2, 4), &check).expect("in-window passes");
        let err = check_dialing_round_bounded(3, (3, 4), &check).expect_err("must fail");
        assert_eq!(err.invariant, "noise-covered-deaddrops");
        // Forward-only is exact regardless of the window.
        let backward = DialingRoundCheck {
            backward_stages: 1,
            ..check
        };
        let err = check_dialing_round_bounded(3, (0, 100), &backward).expect_err("must fail");
        assert_eq!(err.invariant, "dialing-forward-only");
    }

    #[test]
    fn concentration_check_windows_the_empirical_mean() {
        // 100 draws at mean 6.30 against µ = 6, σ = √2·0.5: inside
        // [6 − k·σ/10, 7 + k·σ/10] for k = 6 and bias (0, 1).
        let sigma = std::f64::consts::SQRT_2 * 0.5;
        let bias = (0.0, 1.0);
        check_noise_concentration("singles", 6.0, sigma, 6.0, bias, 100, 630)
            .expect("near-mean passes");
        // A mean far below µ trips even the ceil-biased window.
        let err = check_noise_concentration("singles", 6.0, sigma, 6.0, bias, 100, 400)
            .expect_err("must fail");
        assert_eq!(err.invariant, "noise-concentration");
        assert!(err.detail.contains("singles"), "{}", err.detail);
        // A mean far above µ + bias trips too, and zero draws pass.
        assert!(check_noise_concentration("singles", 6.0, sigma, 6.0, bias, 100, 900).is_err());
        check_noise_concentration("singles", 6.0, sigma, 6.0, bias, 0, 0).expect("vacuous");
        // A downward bias widens the floor: mean 2.7 vs µ/2 = 3 passes
        // with pairs bias (0.5, 1.0) but a mean below µ/2 − 0.5 − k·σ/√n
        // still trips.
        check_noise_concentration("pairs", 3.0, sigma / 2.0, 6.0, (0.5, 1.0), 100, 270)
            .expect("floor-biased mean passes");
        assert!(
            check_noise_concentration("pairs", 3.0, sigma / 2.0, 6.0, (0.5, 1.0), 100, 180)
                .is_err()
        );
    }
}
