//! A deterministic whole-deployment simulator for Vuvuzela.
//!
//! The paper's privacy argument (§4–§5) quietly assumes a well-behaved
//! deployment: every connected client sends exactly one request per
//! round, noise covers the observable dead-drop access counts, dialing
//! rounds never produce a backward pass, and the (ε, δ) budget is spent
//! exactly on the planner's schedule. Those properties are easiest to
//! break under realistic deployment *dynamics* — clients going offline
//! mid-conversation, dial storms, new users joining mid-run, a server
//! stalling or aborting mid-round — which unit tests of individual
//! components never exercise end to end. This crate scripts exactly
//! those dynamics over the real system (the same
//! [`vuvuzela_core::Client`]s, the same
//! [`vuvuzela_core::StreamingChain`] mixed-schedule pipeline, the same
//! adversary taps) and checks the paper's invariants after every round.
//!
//! ## Scenario-script format
//!
//! A [`scenario::Scenario`] is a seeded, self-contained script: the
//! deployment shape (servers, noise (µ, b) per protocol, invitation
//! drops, worker threads) plus an ordered list of [`scenario::Step`]s.
//! Steps either mutate the population — [`scenario::Step::Join`],
//! [`scenario::Step::SetOnline`], [`scenario::Step::Leave`],
//! [`scenario::Step::Dial`], [`scenario::Step::Queue`],
//! [`scenario::Step::AcceptAll`] — configure faults and observers —
//! [`scenario::Step::Observe`], [`scenario::Step::StallLink`],
//! [`scenario::Step::CrashLink`] — or run protocol rounds:
//! [`scenario::Step::Run`] submits a heterogeneous batch of
//! conversation/dialing rounds through **one**
//! [`vuvuzela_core::StreamingChain::run_mixed_schedule`] call, so the
//! scripted rounds genuinely overlap in flight. Population steps apply
//! *between* schedules, never mid-schedule — a client is online or
//! offline for whole rounds, matching the round-synchronous protocol.
//! Clients scan their invitation drop once per `Run` that contains a
//! dialing round, and only the *last* dialing round's drops still exist
//! by then (the deployment retains one dialing round of drops, §5.5) —
//! which is precisely how a client "misses" an invitation and must be
//! re-dialed.
//!
//! ## Determinism contract
//!
//! [`simulator::Simulator::run`] emits a canonical per-round
//! [`transcript::Transcript`] — participants, submissions, dead-drop
//! histograms, per-drop invitation counts, deliveries, invitation
//! scans, tap-observed sizes, and the composed (ε′, δ′) spent — that is
//! **byte-identical for the same scenario** across runs, thread
//! interleavings, and worker counts. This leans on the system's own
//! guarantee (every round's bytes are a pure function of `(seed,
//! round)`; the streaming scheduler is proptested byte-identical to the
//! sequential chain), plus three simulator-side rules: nothing
//! timing-dependent is ever recorded (no wall-clock durations), records
//! gathered from concurrent stages are re-ordered into canonical
//! `(round, direction)` order before rendering, and an **aborted**
//! schedule contributes only its planned round ids — which rounds were
//! partially processed when a schedule dies *is* timing-dependent, so
//! none of their partial effects are transcribed. The transcript hash
//! ([`transcript::Transcript::sha256_hex`]) is what CI pins across two
//! runs of the bundled scenario matrix.
//!
//! ## Round-abort semantics
//!
//! A schedule that panics mid-flight (an injected
//! [`vuvuzela_adversary::taps::CrashOnRound`] fault, or any stage
//! death) aborts **as a unit**: no round of the schedule returns
//! replies, clients expire the dead rounds' reply keys, every server
//! discards all in-flight round state
//! ([`vuvuzela_core::Chain::abort_in_flight_rounds`]), and the
//! deployment resumes with fresh round numbers. Client-level
//! retransmission (§3.1) then re-carries whatever data the aborted
//! rounds lost; queued invitations consumed by an aborted dialing round
//! are gone and must be re-dialed. The (ε′, δ′) ledger still charges
//! every *scheduled* round — partial rounds may have put observable
//! traffic on the wire, so the accounting is conservative.
//!
//! ## Invariant list
//!
//! After every **completed** round, [`invariants`] asserts:
//!
//! 1. **Uniform participation** — every online client submitted exactly
//!    one onion per conversation slot (dialing: exactly one request),
//!    of exactly the right wrapped size, on the clients→entry link.
//! 2. **Noise-covered dead drops** — the conversation histogram
//!    decomposes as `m2 = (n−1)·(pair draws) + (mutual pairs)` and
//!    `m1 = (n−1)·(single draws) + (remaining slots)`, with
//!    `m_many = 0`; per-drop dialing counts equal `chain_len` noise
//!    draws plus the real invitations the script sent there. In
//!    deterministic noise mode every draw is exactly `⌈µ⌉` and the
//!    checks are equalities; in sampled mode each draw must land in
//!    the inclusive window
//!    [`vuvuzela_dp::NoiseDistribution::count_bounds`] derives from
//!    the Laplace tail.
//! 3. **Dialing is forward-only** — no backward timing, no backward
//!    client-link traffic, and no server retains round state once a
//!    schedule drains.
//! 4. **Monotone privacy spend** — the composed (ε′, δ′) after round k
//!    equals an independent Theorem-2 recomputation at k rounds
//!    ([`vuvuzela_dp::PrivacyLedger`]) and strictly exceeds the spend at
//!    k−1.
//! 5. **Fixed sizes under taps** — every batch an attached
//!    [`vuvuzela_adversary::taps::SizeRecorder`] observed is
//!    single-sized, with the exact width the round kind implies at that
//!    chain position, and an onion count inside the round's noise
//!    window (exact in deterministic mode).
//! 6. **Noise concentration** (sampled mode only, end of run) — the
//!    empirical mean of every noise draw family inferred from the
//!    observables (conversation singles, conversation pairs, dialing
//!    per-drop) lies within `k·σ/√n` of its µ, plus the ceiling bias
//!    ([`invariants::check_noise_concentration`]).
//!
//! The bundled scenario matrix ([`scenario::bundled_matrix`]) covers
//! steady state, churn with rejoin and permanent leave, a dial storm at
//! the paper's µ = 13,000 per drop ([`scenario::Scale::Full`]; CI runs
//! [`scenario::Scale::Smoke`] at µ scaled down 100×), idle-client cover
//! traffic, server slowdown, server abort, and re-dial after a missed
//! dialing round.
//!
//! ## The adversary axis and survive/trip annotations
//!
//! [`soak`] crosses the bundled matrix with an *active-adversary*
//! strategy axis: every scenario re-runs under sampled noise with a
//! tampering tap ([`vuvuzela_adversary::taps`]) on chain link 0 —
//! dropping a fraction of every batch, delaying a batch into a later
//! round, replaying a batch, or injecting well-formed garbage onions.
//! Two contracts hold:
//!
//! - **Graceful degradation**: a tampered run must *terminate* with
//!   every schedule drained. Tolerant-mode execution
//!   ([`simulator::Simulator::run_collecting`]) transcribes and
//!   collects violations instead of aborting; surviving onions still
//!   deliver their replies (a client whose onion was dropped sees a
//!   missed round and retransmits), and the ledger still charges
//!   every started round — tampering can waste budget, never save it.
//! - **Survive/trip annotations**: every [`soak::SoakCase`] declares
//!   the exact invariant set its tampering trips
//!   ([`soak::expected_trips`]). The case verdict is set equality:
//!   an undeclared trip is a failure (the degradation story broke),
//!   and an un-tripped declaration is *also* a failure (the checker
//!   lost its teeth). `sim_soak` runs the whole crossed matrix and
//!   writes one transcript artefact per case.
//!
//! ## The attack matrix
//!
//! [`attack`] closes the loop on the (ε′, δ′) accounting: it runs
//! *adjacent-world* twin scenarios (one target user talking vs. idle),
//! hands the rendered transcripts to the
//! [`vuvuzela_adversary::TranscriptView`] parser — which reconstructs
//! only what a tapping adversary sees — trains a
//! [`vuvuzela_adversary::ThresholdDetector`] on half the seeds, and
//! asserts the held-out advantage against
//! `max_advantage(ε′, δ′)` with the budget read from the transcript's
//! own ledger lines. Honest sampled noise must stay under the bound;
//! the noise-off and undersized-µ negative controls must *beat* it.
//! `sim_attack` runs the matrix and writes a JSON verdict artefact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod invariants;
pub mod scenario;
pub mod simulator;
pub mod soak;
pub mod transcript;

pub use attack::{
    attack_matrix, run_attack_case, twin_scenario, AttackCase, AttackControl, AttackOutcome,
    AttackVerdict, ATTACK_ALPHA,
};
pub use scenario::{bundled_matrix, LedgerNoise, RoundPlan, Scale, Scenario, Step};
pub use simulator::{run_scenario, SimError, SimReport, Simulator};
pub use soak::{run_soak_case, soak_matrix, AdversaryStrategy, SoakCase, SoakOutcome};
pub use transcript::Transcript;
