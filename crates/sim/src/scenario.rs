//! Scenario scripts: the deployment shape plus an ordered step list.
//!
//! See the crate docs for the script format and the determinism
//! contract. [`bundled_matrix`] holds the repository's standard
//! scenario set — the matrix CI runs (at [`Scale::Smoke`]) and the
//! integration tests assert invariants over.

/// One protocol round inside a [`Step::Run`] schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoundPlan {
    /// A conversation round: every online client submits one exchange
    /// per slot; replies come back.
    Conversation,
    /// A dialing round: every online client submits one invitation
    /// (real if one is queued, else a no-op write); forward-only.
    Dialing,
}

/// One scripted deployment event.
#[derive(Clone, Debug)]
pub enum Step {
    /// Add this many fresh clients, online, with deterministic keys.
    Join(usize),
    /// Connect (`true`) or disconnect (`false`) a client. Offline
    /// clients send nothing — the observable event of §4.2.
    SetOnline(usize, bool),
    /// Permanently remove a client: it goes offline and never returns
    /// (its conversations starve and its partners' messages keep
    /// retransmitting into singles).
    Leave(usize),
    /// `caller` queues an invitation to `callee` for the next dialing
    /// round and pre-enters the conversation (§3).
    Dial {
        /// Index of the dialing client.
        caller: usize,
        /// Index of the client being dialed.
        callee: usize,
    },
    /// Every client accepts every invitation it has scanned, as far as
    /// its conversation slots allow.
    AcceptAll,
    /// Queue a message between two clients with an active conversation.
    Queue {
        /// Sender index.
        from: usize,
        /// Recipient index.
        to: usize,
        /// Message body (≤ the fixed per-round capacity).
        body: Vec<u8>,
    },
    /// Run one streaming schedule: all listed rounds go through a
    /// single `run_mixed_schedule` call and overlap in flight.
    Run(Vec<RoundPlan>),
    /// Add this many fresh clients as a struct-of-arrays
    /// [`vuvuzela_core::cohort::ClientCohort`]: they build requests in
    /// parallel from flat buffers and run alongside the individual
    /// clients of [`Step::Join`]. A scenario has at most one cohort (a
    /// later `Population` step grows it). Cohort clients provide cover
    /// traffic and can converse among themselves via
    /// [`crate::Simulator`] accessors, but they are not addressable by
    /// the per-client steps above.
    Population(usize),
    /// Attach a passive size-recording tap to chain link `link`
    /// (0 = entry→server 0); the invariant checker verifies every batch
    /// it observes is single-sized with the exact expected width.
    Observe {
        /// Chain-link index to observe.
        link: usize,
    },
    /// Attach a stall tap to chain link `link`: every forward transfer
    /// sleeps `millis`, modelling a slow server. Must not change any
    /// round's bytes (the slowdown scenario's twin-run test pins this).
    StallLink {
        /// Chain-link index to stall.
        link: usize,
        /// Stall per forward transfer, in milliseconds.
        millis: u64,
    },
    /// Arm a crash fault: the `round_offset`-th round of the *next*
    /// [`Step::Run`] panics the pipeline stage downstream of chain link
    /// `link`, aborting that whole schedule (see the crate docs'
    /// round-abort semantics).
    CrashLink {
        /// Chain-link index the fault fires on.
        link: usize,
        /// Which round of the next schedule triggers it (0-based).
        round_offset: u64,
    },
}

/// A complete scenario script.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Scenario name (used in the transcript header and artefact names).
    pub name: String,
    /// Master seed for keys, noise, shuffles and client RNG.
    pub seed: u64,
    /// Mix-chain length.
    pub servers: usize,
    /// Worker threads per server.
    pub workers: usize,
    /// Conversation noise mean µ per noising server; deterministic
    /// mode. The scale is derived as `b = max(µ/20, 0.5)` — the paper's
    /// ratio, clamped so tiny test-scale µ keeps a valid Laplace scale
    /// (at the bundled µ = 6 the clamp binds: b = 0.5, per-round
    /// ε = 4/b = 8).
    pub conversation_mu: f64,
    /// Dialing noise mean µ per server per drop; scale
    /// `b = max(µ/10, 0.5)`, clamped like the conversation scale.
    pub dialing_mu: f64,
    /// Explicit conversation noise scale b, overriding the derived
    /// `max(µ/20, 0.5)`. The attack matrix needs µ and b decoupled:
    /// a meaningful composed budget wants a large b (ε = 4/b) while µ
    /// only has to clear `b·ln(1/(2δ))` for a small δ — the derived
    /// ratio would force µ 5–15× higher than necessary.
    pub conversation_b: Option<f64>,
    /// Explicit dialing noise scale b, overriding `max(µ/10, 0.5)`.
    pub dialing_b: Option<f64>,
    /// When set, the privacy ledger charges with *these* noise
    /// parameters instead of the deployed ones — modelling a broken
    /// deployment that advertises a budget its servers do not draw
    /// enough noise to honour. The transcript records both lines, and
    /// the attack harness's undersized-µ negative control relies on
    /// the detector *beating* the claimed bound.
    pub ledger_noise: Option<LedgerNoise>,
    /// Real invitation drops per dialing round (§5.4's m).
    pub num_drops: u32,
    /// Conversation slots per client.
    pub slots: usize,
    /// Rounds before an unacked message retransmits.
    pub retransmit_after: u64,
    /// Dead-drop shards at the last server. The transcript is
    /// byte-identical for every value (the sharded exchange merges
    /// deterministically) — the knob only controls tail-stage
    /// parallelism, and the scenario tests pin the invariance.
    pub exchange_shards: usize,
    /// How servers turn (µ, b) into concrete noise counts.
    /// [`vuvuzela_dp::NoiseMode::Deterministic`] (the default) emits
    /// exactly ⌈µ⌉ per draw and the invariant checker uses exact
    /// equalities; [`vuvuzela_dp::NoiseMode::Sampled`] draws the real
    /// truncated Laplace (production behaviour) and the checker switches
    /// to distributional bounds — per-draw tail windows plus end-of-run
    /// concentration of the empirical mean. Soak runs
    /// ([`crate::soak`]) use `Sampled`.
    pub noise_mode: vuvuzela_dp::NoiseMode,
    /// The script.
    pub steps: Vec<Step>,
}

/// The noise parameters a mis-deployment *claims* in its privacy
/// ledger (see [`Scenario::ledger_noise`]).
#[derive(Clone, Copy, Debug)]
pub struct LedgerNoise {
    /// Claimed conversation noise distribution.
    pub conversation: vuvuzela_dp::NoiseDistribution,
    /// Claimed dialing noise distribution.
    pub dialing: vuvuzela_dp::NoiseDistribution,
}

impl Scenario {
    /// A scenario skeleton with the defaults the bundled matrix uses:
    /// 3 servers, 2 workers, µ = 6 conversation / 3 dialing noise, one
    /// drop, one slot, retransmit after 2 rounds.
    #[must_use]
    pub fn new(name: &str, seed: u64) -> Scenario {
        Scenario {
            name: name.to_string(),
            seed,
            servers: 3,
            workers: 2,
            conversation_mu: 6.0,
            dialing_mu: 3.0,
            conversation_b: None,
            dialing_b: None,
            ledger_noise: None,
            num_drops: 1,
            slots: 1,
            retransmit_after: 2,
            exchange_shards: 4,
            noise_mode: vuvuzela_dp::NoiseMode::Deterministic,
            steps: Vec::new(),
        }
    }
}

/// How big the bundled matrix runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Reduced scale for tests and CI: tens of clients, dial-storm µ
    /// scaled down 100× (130 per drop). Seconds per scenario.
    Smoke,
    /// Deployment scale: hundreds-to-thousands of clients and the
    /// paper's µ = 13,000 noise invitations per drop in the dial storm
    /// (§5.3/§8.1). Minutes of CPU; run via `sim_matrix --full`.
    Full,
}

/// The repository's bundled scenario matrix: ≥ 6 deployment dynamics
/// over the streaming mixed-schedule pipeline, every one invariant-
/// checked per round and transcript-hash-stable per seed.
#[must_use]
pub fn bundled_matrix(scale: Scale) -> Vec<Scenario> {
    let population = match scale {
        Scale::Smoke => 48,
        Scale::Full => 1000,
    };
    let storm_clients = match scale {
        Scale::Smoke => 32,
        Scale::Full => 400,
    };
    let storm_mu = match scale {
        Scale::Smoke => 130.0,
        Scale::Full => 13_000.0,
    };
    vec![
        steady_state(population),
        churn_rejoin(),
        dial_storm(storm_clients, storm_mu),
        idle_cover(),
        server_slowdown(),
        server_fault(),
        redial_after_miss(),
    ]
}

/// Steady state at population scale: a handful of pairs converse, the
/// rest provide idle cover, conversation and dialing rounds interleave
/// in one pipeline, and a passive tap watches a mid-chain link.
fn steady_state(population: usize) -> Scenario {
    let mut s = Scenario::new("steady_state", 0xA11CE);
    s.steps.push(Step::Join(population));
    s.steps.push(Step::Observe { link: 1 });
    // Five pairs dial: clients (0,1), (2,3), ... (8,9).
    for pair in 0..5 {
        s.steps.push(Step::Dial {
            caller: 2 * pair,
            callee: 2 * pair + 1,
        });
    }
    s.steps.push(Step::Run(vec![RoundPlan::Dialing]));
    s.steps.push(Step::AcceptAll);
    for pair in 0..5u8 {
        s.steps.push(Step::Queue {
            from: 2 * pair as usize,
            to: 2 * pair as usize + 1,
            body: format!("hello from pair {pair}").into_bytes(),
        });
    }
    // Mixed schedule: conversation rounds with a dialing round wedged in.
    s.steps.push(Step::Run(vec![
        RoundPlan::Conversation,
        RoundPlan::Conversation,
        RoundPlan::Dialing,
        RoundPlan::Conversation,
    ]));
    // Replies flow the other way.
    for pair in 0..5u8 {
        s.steps.push(Step::Queue {
            from: 2 * pair as usize + 1,
            to: 2 * pair as usize,
            body: format!("ack from pair {pair}").into_bytes(),
        });
    }
    s.steps.push(Step::Run(vec![
        RoundPlan::Conversation,
        RoundPlan::Conversation,
    ]));
    s
}

/// Churn: a partner drops offline mid-conversation (retransmission
/// carries the message when it returns), new clients join mid-run and
/// start talking, and one client leaves for good.
fn churn_rejoin() -> Scenario {
    let mut s = Scenario::new("churn_rejoin", 0xC4_0A1);
    s.steps.push(Step::Join(16));
    s.steps.push(Step::Dial {
        caller: 0,
        callee: 1,
    });
    s.steps.push(Step::Dial {
        caller: 2,
        callee: 3,
    });
    s.steps.push(Step::Run(vec![RoundPlan::Dialing]));
    s.steps.push(Step::AcceptAll);
    s.steps.push(Step::Queue {
        from: 0,
        to: 1,
        body: b"sent while you were away".to_vec(),
    });
    // Client 1 misses the round carrying the message...
    s.steps.push(Step::SetOnline(1, false));
    s.steps.push(Step::Run(vec![
        RoundPlan::Conversation,
        RoundPlan::Conversation,
    ]));
    // ...rejoins, and the retransmit timer re-carries it; meanwhile two
    // new clients join and dial each other, and client 3 leaves forever.
    s.steps.push(Step::SetOnline(1, true));
    s.steps.push(Step::Join(2));
    s.steps.push(Step::Leave(3));
    s.steps.push(Step::Dial {
        caller: 16,
        callee: 17,
    });
    s.steps.push(Step::Queue {
        from: 2,
        to: 3,
        body: b"talking to a ghost".to_vec(),
    });
    s.steps.push(Step::Run(vec![
        RoundPlan::Conversation,
        RoundPlan::Dialing,
        RoundPlan::Conversation,
        RoundPlan::Conversation,
    ]));
    s.steps.push(Step::AcceptAll);
    s.steps.push(Step::Queue {
        from: 16,
        to: 17,
        body: b"late joiners talk too".to_vec(),
    });
    s.steps.push(Step::Run(vec![
        RoundPlan::Conversation,
        RoundPlan::Conversation,
    ]));
    s
}

/// A dial storm: every client dials at once, against the paper's per-
/// drop noise level (µ = 13,000 at full scale, §8.1 — smoke runs it
/// 100× reduced), across multiple invitation drops.
fn dial_storm(clients: usize, mu: f64) -> Scenario {
    let mut s = Scenario::new("dial_storm", 0xD1A7);
    s.dialing_mu = mu;
    s.num_drops = 2;
    s.steps.push(Step::Join(clients));
    // Everyone dials at once — both directions of every pair, so every
    // single client sends a *real* invitation in the same round.
    for pair in 0..clients / 2 {
        s.steps.push(Step::Dial {
            caller: 2 * pair,
            callee: 2 * pair + 1,
        });
        s.steps.push(Step::Dial {
            caller: 2 * pair + 1,
            callee: 2 * pair,
        });
    }
    s.steps.push(Step::Run(vec![RoundPlan::Dialing]));
    s.steps.push(Step::AcceptAll);
    s.steps.push(Step::Queue {
        from: 0,
        to: 1,
        body: b"storm survivor".to_vec(),
    });
    s.steps.push(Step::Run(vec![RoundPlan::Conversation]));
    s
}

/// Nobody talks: every round is pure cover traffic, and the dead-drop
/// histogram must decompose into exactly the noise recipe plus one
/// single per idle client.
fn idle_cover() -> Scenario {
    let mut s = Scenario::new("idle_cover", 0x1D7E);
    s.steps.push(Step::Join(20));
    s.steps.push(Step::Observe { link: 2 });
    s.steps.push(Step::Run(vec![
        RoundPlan::Conversation,
        RoundPlan::Conversation,
        RoundPlan::Dialing,
        RoundPlan::Conversation,
    ]));
    s
}

/// A server stalls 3 ms per forward hop mid-chain while a mixed
/// schedule streams past it. Timing changes; bytes must not — the
/// integration tests run the stall-free twin and assert identical
/// round records.
fn server_slowdown() -> Scenario {
    let mut s = server_slowdown_base();
    s.steps.insert(1, Step::StallLink { link: 1, millis: 3 });
    s
}

/// The slowdown scenario without its stall — the twin the tests diff
/// against. Public to the crate's tests via `bundled_matrix` siblings.
pub(crate) fn server_slowdown_base() -> Scenario {
    let mut s = Scenario::new("server_slowdown", 0x510E);
    s.steps.push(Step::Join(16));
    s.steps.push(Step::Dial {
        caller: 4,
        callee: 5,
    });
    s.steps.push(Step::Run(vec![RoundPlan::Dialing]));
    s.steps.push(Step::AcceptAll);
    s.steps.push(Step::Queue {
        from: 4,
        to: 5,
        body: b"through the slow hop".to_vec(),
    });
    s.steps.push(Step::Run(vec![
        RoundPlan::Conversation,
        RoundPlan::Dialing,
        RoundPlan::Conversation,
        RoundPlan::Conversation,
    ]));
    s
}

/// A server aborts mid-schedule: the second round of a three-round
/// schedule kills a pipeline stage, the whole schedule aborts, and the
/// deployment recovers — the queued message arrives via retransmission
/// in the next schedule.
fn server_fault() -> Scenario {
    let mut s = Scenario::new("server_fault", 0xFA017);
    s.steps.push(Step::Join(12));
    s.steps.push(Step::Dial {
        caller: 0,
        callee: 1,
    });
    s.steps.push(Step::Run(vec![RoundPlan::Dialing]));
    s.steps.push(Step::AcceptAll);
    s.steps.push(Step::Queue {
        from: 0,
        to: 1,
        body: b"survives the crash".to_vec(),
    });
    s.steps.push(Step::CrashLink {
        link: 1,
        round_offset: 1,
    });
    // This whole schedule aborts (round-abort semantics).
    s.steps.push(Step::Run(vec![
        RoundPlan::Conversation,
        RoundPlan::Conversation,
        RoundPlan::Conversation,
    ]));
    // Recovery: fresh rounds; the client retransmits and delivers.
    s.steps.push(Step::Run(vec![
        RoundPlan::Conversation,
        RoundPlan::Conversation,
        RoundPlan::Conversation,
    ]));
    s
}

/// An invitation is missed because the callee is offline for the
/// dialing round and the next dialing round overwrites the drops; the
/// caller re-dials and the second invitation lands.
fn redial_after_miss() -> Scenario {
    let mut s = Scenario::new("redial_after_miss", 0x2ED1A1);
    s.steps.push(Step::Join(10));
    s.steps.push(Step::Dial {
        caller: 0,
        callee: 1,
    });
    // Callee offline: it cannot download this round's drop...
    s.steps.push(Step::SetOnline(1, false));
    s.steps.push(Step::Run(vec![RoundPlan::Dialing]));
    // ...and a second dialing round (while still offline) overwrites it.
    s.steps.push(Step::Run(vec![RoundPlan::Dialing]));
    s.steps.push(Step::SetOnline(1, true));
    // Back online, but the invitation is gone: re-dial.
    s.steps.push(Step::Dial {
        caller: 0,
        callee: 1,
    });
    s.steps.push(Step::Run(vec![RoundPlan::Dialing]));
    s.steps.push(Step::AcceptAll);
    s.steps.push(Step::Queue {
        from: 0,
        to: 1,
        body: b"second dial worked".to_vec(),
    });
    s.steps.push(Step::Run(vec![
        RoundPlan::Conversation,
        RoundPlan::Conversation,
    ]));
    s
}
