//! The deployment simulator: executes a [`Scenario`] over a real
//! [`StreamingChain`] + [`Client`] population, emitting the canonical
//! transcript and checking every invariant per round.
//!
//! See the crate docs for the script format, the determinism contract
//! and the round-abort semantics. Script *misuse* (dialing with no free
//! slot, queueing to a non-partner, indexing a client that never
//! joined) panics — scenarios are test fixtures, and a silently skipped
//! step would invalidate the invariant arithmetic; *system* divergence
//! surfaces as [`SimError::Invariant`].

use crate::invariants::{
    self, check_conversation_histogram, check_conversation_participation, check_dialing_counts,
    check_dialing_participation, check_noise_concentration, check_privacy_charge, check_tap_sizes,
    ConversationRoundCheck, DialingRoundCheck, InvariantViolation, NoiseSoakStats, TapRoundShape,
};
use crate::scenario::{RoundPlan, Scenario, Step};
use crate::transcript::{hex, Transcript};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;
use vuvuzela_adversary::taps::{CrashOnRound, SizeRecorder, StallLink};
use vuvuzela_core::chain::{Batch, RoundOutcome, RoundSpec};
use vuvuzela_core::client::Client;
use vuvuzela_core::cohort::{self, ClientCohort};
use vuvuzela_core::config::SystemConfig;
use vuvuzela_core::entry;
use vuvuzela_core::pipeline::StreamingChain;
use vuvuzela_crypto::onion;
use vuvuzela_crypto::x25519::{Keypair, PublicKey};
use vuvuzela_dp::{PrivacyLedger, Protocol};
use vuvuzela_net::{LinkId, Tap};
use vuvuzela_wire::deaddrop::InvitationDropIndex;
use vuvuzela_wire::{RoundType, DIAL_REQUEST_LEN, EXCHANGE_REQUEST_LEN, EXCHANGE_RESPONSE_LEN};

/// Theorem 2's free parameter, fixed to the paper's d = 10⁻⁵.
const LEDGER_D: f64 = 1e-5;

/// Per-draw tail budget for sampled-mode noise windows: each noise
/// count must land within [`vuvuzela_dp::NoiseDistribution::
/// count_bounds`]`(SAMPLED_TAIL_P)`. A soak run makes a few thousand
/// draws, so the expected number of honest draws outside their window
/// is ≪ 1 — and runs are seeded, so a passing seed passes forever.
const SAMPLED_TAIL_P: f64 = 1e-6;

/// Domain separator for the cohort's RNG seed, so cohort clients and
/// per-object clients driven off the same scenario seed never share a
/// per-client randomness stream.
const COHORT_SEED_XOR: u64 = 0x00C0_8087_C0C0_8087;

/// Width multiplier for the end-of-run concentration window
/// (`k·σ/√n` around µ). Six standard errors: loose enough that honest
/// seeded runs never trip, tight enough that systematic tampering
/// (every round missing a slice of its histogram) cannot hide.
const CONCENTRATION_K: f64 = 6.0;

/// A simulation failure.
#[derive(Debug)]
pub enum SimError {
    /// A per-round invariant did not hold.
    Invariant(InvariantViolation),
    /// The attack harness could not use a run's transcript (parse
    /// failure or missing observables) — see [`crate::attack`].
    Attack(String),
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::Invariant(v) => write!(f, "{v}"),
            SimError::Attack(e) => write!(f, "attack harness: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<InvariantViolation> for SimError {
    fn from(v: InvariantViolation) -> SimError {
        SimError::Invariant(v)
    }
}

/// What a completed simulation hands back.
#[derive(Debug)]
pub struct SimReport {
    /// Scenario name.
    pub name: String,
    /// The canonical per-round transcript.
    pub transcript: Transcript,
    /// Hex SHA-256 of the rendered transcript.
    pub hash: String,
    /// Rounds that completed (aborted rounds excluded).
    pub rounds_completed: u64,
    /// Schedules that aborted mid-flight.
    pub schedules_aborted: u64,
    /// Messages delivered to clients across the whole run.
    pub delivered: u64,
}

struct SimClient {
    client: Client,
    online: bool,
    left: bool,
    /// FIFO mirror of the client's internal dial queue, as callee
    /// indices — lets the simulator predict which drop each dialing
    /// round's real invitations target.
    dial_mirror: VecDeque<usize>,
}

/// Per-round bookkeeping captured when the round's requests are built.
enum RoundMeta {
    Conversation {
        round: u64,
        participants: Vec<usize>,
        layout: entry::RoundLayout,
        mutual_pairs: u64,
        /// Requests the cohort contributed at the head of the batch
        /// (`cohort clients × slots`); the per-object participants'
        /// multiplexed requests follow.
        cohort_requests: usize,
    },
    Dialing {
        round: u64,
        participants: Vec<usize>,
        real_per_drop: Vec<u64>,
        /// Cohort clients heading the batch, one no-op write each.
        cohort_clients: usize,
    },
}

impl RoundMeta {
    fn round(&self) -> u64 {
        match self {
            RoundMeta::Conversation { round, .. } | RoundMeta::Dialing { round, .. } => *round,
        }
    }

    fn round_type(&self) -> RoundType {
        match self {
            RoundMeta::Conversation { .. } => RoundType::Conversation,
            RoundMeta::Dialing { .. } => RoundType::Dialing,
        }
    }
}

/// The deployment simulator. Construct with [`Simulator::new`], consume
/// with [`Simulator::run`].
pub struct Simulator {
    scenario: Scenario,
    chain: StreamingChain,
    config: SystemConfig,
    clients: Vec<SimClient>,
    /// The struct-of-arrays population, if the scenario has a
    /// [`Step::Population`]: bulk cover clients whose requests head
    /// every round's batch. Cohort clients are always online, never
    /// dial and never churn; per-client steps cannot address them.
    cohort: Option<ClientCohort>,
    by_key: HashMap<PublicKey, usize>,
    tables: Option<Arc<Vec<onion::PrecomputedServer>>>,
    rng: StdRng,
    next_round: u64,
    ledger: PrivacyLedger,
    last_spent: [vuvuzela_dp::ComposedPrivacy; 2],
    transcript: Transcript,
    recorders: Vec<(usize, Arc<Mutex<SizeRecorder>>)>,
    pending_crash: Option<(usize, u64)>,
    delivered_seen: HashMap<(usize, PublicKey), usize>,
    rounds_completed: u64,
    schedules_aborted: u64,
    delivered: u64,
    /// `true` (the [`Simulator::run`] default): the first violation
    /// aborts the run as [`SimError::Invariant`]. `false`
    /// ([`Simulator::run_collecting`]): violations are transcribed and
    /// collected while the deployment keeps degrading gracefully.
    fail_fast: bool,
    violations: Vec<InvariantViolation>,
    soak: NoiseSoakStats,
}

impl Simulator {
    /// Builds the deployment a scenario describes (chain, links, seeded
    /// RNG) with an empty population.
    #[must_use]
    pub fn new(scenario: Scenario) -> Simulator {
        let config = SystemConfig {
            chain_len: scenario.servers,
            conversation_noise: vuvuzela_dp::NoiseDistribution::new(
                scenario.conversation_mu,
                scenario
                    .conversation_b
                    .unwrap_or((scenario.conversation_mu / 20.0).max(0.5)),
            ),
            dialing_noise: vuvuzela_dp::NoiseDistribution::new(
                scenario.dialing_mu,
                scenario
                    .dialing_b
                    .unwrap_or((scenario.dialing_mu / 10.0).max(0.5)),
            ),
            noise_mode: scenario.noise_mode,
            workers: scenario.workers,
            conversation_slots: scenario.slots,
            retransmit_after: scenario.retransmit_after,
            exchange_shards: scenario.exchange_shards,
        };
        let chain = StreamingChain::new(config.clone(), scenario.seed);
        // A ledger override models a mis-deployment: servers draw the
        // config's noise but the accounting charges (and the transcript
        // advertises) the claimed parameters.
        let (ledger_conversation, ledger_dialing) = match scenario.ledger_noise {
            Some(claimed) => (claimed.conversation, claimed.dialing),
            None => (config.conversation_noise, config.dialing_noise),
        };
        let ledger = PrivacyLedger::new(ledger_conversation, ledger_dialing, LEDGER_D);
        let last_spent = [
            ledger.spent(Protocol::Conversation),
            ledger.spent(Protocol::Dialing),
        ];
        let mut transcript = Transcript::new();
        transcript.push("vuvuzela-sim transcript v1".to_string());
        transcript.push(format!("scenario {}", scenario.name));
        transcript.push(format!(
            "seed {} servers {} workers {} shards {} slots {} retransmit_after {}",
            scenario.seed,
            scenario.servers,
            scenario.workers,
            scenario.exchange_shards,
            scenario.slots,
            scenario.retransmit_after
        ));
        let mode = match scenario.noise_mode {
            vuvuzela_dp::NoiseMode::Sampled => "sampled",
            vuvuzela_dp::NoiseMode::Deterministic => "deterministic",
            vuvuzela_dp::NoiseMode::Off => "off",
        };
        transcript.push(format!(
            "noise conversation mu {} b {} dialing mu {} b {} mode {mode} drops {}",
            config.conversation_noise.mu,
            config.conversation_noise.b,
            config.dialing_noise.mu,
            config.dialing_noise.b,
            scenario.num_drops
        ));
        if scenario.ledger_noise.is_some() {
            transcript.push(format!(
                "noise claimed conversation mu {} b {} dialing mu {} b {}",
                ledger_conversation.mu, ledger_conversation.b, ledger_dialing.mu, ledger_dialing.b
            ));
        }
        Simulator {
            rng: StdRng::seed_from_u64(scenario.seed.wrapping_add(0x51u64)),
            chain,
            config,
            clients: Vec::new(),
            cohort: None,
            by_key: HashMap::new(),
            tables: None,
            next_round: 0,
            ledger,
            last_spent,
            transcript,
            recorders: Vec::new(),
            pending_crash: None,
            delivered_seen: HashMap::new(),
            rounds_completed: 0,
            schedules_aborted: 0,
            delivered: 0,
            fail_fast: true,
            violations: Vec::new(),
            soak: NoiseSoakStats::default(),
            scenario,
        }
    }

    /// Executes every step of the scenario, failing fast.
    ///
    /// # Errors
    ///
    /// [`SimError::Invariant`] the moment any per-round invariant fails.
    ///
    /// # Panics
    ///
    /// On script misuse (see the module docs).
    pub fn run(mut self) -> Result<SimReport, SimError> {
        self.execute()?;
        Ok(self.into_report())
    }

    /// Executes every step of the scenario in tolerant mode: instead of
    /// aborting, each invariant violation is transcribed (a
    /// deterministic `violation …` line) and collected, while the
    /// deployment keeps running — replies still deliver, the ledger
    /// still charges, later rounds still execute. This is the soak
    /// runner's entry point: a tampered run must *terminate* with its
    /// violations enumerated, never wedge.
    ///
    /// # Panics
    ///
    /// On script misuse (see the module docs).
    #[must_use]
    pub fn run_collecting(mut self) -> (SimReport, Vec<InvariantViolation>) {
        self.fail_fast = false;
        self.execute()
            .expect("tolerant mode collects violations instead of failing");
        let violations = std::mem::take(&mut self.violations);
        (self.into_report(), violations)
    }

    fn execute(&mut self) -> Result<(), SimError> {
        let steps = std::mem::take(&mut self.scenario.steps);
        for step in steps {
            self.apply(step)?;
        }
        self.check_concentration()?;
        Ok(())
    }

    fn into_report(mut self) -> SimReport {
        self.transcript.push(format!(
            "end rounds {} aborted {}",
            self.rounds_completed, self.schedules_aborted
        ));
        let hash = self.transcript.sha256_hex();
        SimReport {
            name: self.scenario.name.clone(),
            hash,
            rounds_completed: self.rounds_completed,
            schedules_aborted: self.schedules_aborted,
            delivered: self.delivered,
            transcript: self.transcript,
        }
    }

    /// Routes one invariant result through the failure policy: fail
    /// fast as [`SimError`], or transcribe and collect it in tolerant
    /// mode.
    fn note(&mut self, result: Result<(), InvariantViolation>) -> Result<(), SimError> {
        match result {
            Ok(()) => Ok(()),
            Err(v) if self.fail_fast => Err(v.into()),
            Err(v) => {
                self.transcript.push(format!("violation {v}"));
                self.violations.push(v);
                Ok(())
            }
        }
    }

    /// End-of-run distributional invariant for sampled noise: the
    /// empirical mean of every inferred draw family must concentrate
    /// around its µ (`k·σ/√n` windows, plus the ceil bias).
    fn check_concentration(&mut self) -> Result<(), SimError> {
        if !matches!(self.config.noise_mode, vuvuzela_dp::NoiseMode::Sampled) {
            return Ok(());
        }
        let conv = self.config.conversation_noise;
        let dial = self.config.dialing_noise;
        let s = self.soak;
        self.transcript.push(format!(
            "soak conversation draws {} singles {} pairs {} dialing draws {} sum {}",
            s.conversation_draws, s.singles_sum, s.pairs_sum, s.dialing_draws, s.dialing_sum
        ));
        // Singletons are n1 (ceil bias ≤ 1) plus the odd-n2 leftover
        // (≤ 1 more per draw): bias (0, 2).
        self.note(check_noise_concentration(
            "conversation-singles",
            conv.mu,
            conv.std_dev(),
            CONCENTRATION_K,
            (0.0, 2.0),
            s.conversation_draws,
            s.singles_sum,
        ))?;
        // Pairs are ⌊n2/2⌋ per draw: half the mean and deviation;
        // ceiling the count biases up ≤ ½ pair while floor pairing
        // biases *down* ≤ ½ pair: bias (0.5, 1.0).
        self.note(check_noise_concentration(
            "conversation-pairs",
            conv.mu / 2.0,
            conv.std_dev() / 2.0,
            CONCENTRATION_K,
            (0.5, 1.0),
            s.conversation_draws,
            s.pairs_sum,
        ))?;
        self.note(check_noise_concentration(
            "dialing-per-drop",
            dial.mu,
            dial.std_dev(),
            CONCENTRATION_K,
            (0.0, 1.0),
            s.dialing_draws,
            s.dialing_sum,
        ))?;
        Ok(())
    }

    /// Inclusive per-draw windows for this run's noise mode:
    /// `(singles, pairs)` for one noising server's conversation draws.
    fn conversation_noise_bounds(&self) -> ((u64, u64), (u64, u64)) {
        match self.config.noise_mode {
            vuvuzela_dp::NoiseMode::Deterministic => {
                let (singles, pairs) =
                    invariants::deterministic_conversation_noise(self.config.conversation_noise.mu);
                ((singles, singles), (pairs, pairs))
            }
            vuvuzela_dp::NoiseMode::Sampled => {
                let (lo, hi) = self.config.conversation_noise.count_bounds(SAMPLED_TAIL_P);
                // Singletons: n1 ∈ [lo, hi] plus the odd-n2 leftover
                // (0 or 1); pairs: ⌊n2/2⌋ for n2 ∈ [lo, hi].
                ((lo, hi + 1), (lo / 2, hi / 2))
            }
            vuvuzela_dp::NoiseMode::Off => ((0, 0), (0, 0)),
        }
    }

    /// Inclusive per-server per-drop dialing draw window for this
    /// run's noise mode.
    fn dialing_noise_bounds(&self) -> (u64, u64) {
        match self.config.noise_mode {
            vuvuzela_dp::NoiseMode::Deterministic => {
                let noise = invariants::deterministic_dialing_noise(self.config.dialing_noise.mu);
                (noise, noise)
            }
            vuvuzela_dp::NoiseMode::Sampled => {
                self.config.dialing_noise.count_bounds(SAMPLED_TAIL_P)
            }
            vuvuzela_dp::NoiseMode::Off => (0, 0),
        }
    }

    /// Read access to a client (assertions in tests).
    #[must_use]
    pub fn client(&self, index: usize) -> &Client {
        &self.clients[index].client
    }

    /// Read access to the cohort, if a [`Step::Population`] created one.
    #[must_use]
    pub fn cohort(&self) -> Option<&ClientCohort> {
        self.cohort.as_ref()
    }

    /// Mutable access to the cohort, for scripting cohort-internal
    /// conversations ([`ClientCohort::pair`] /
    /// [`ClientCohort::queue_message`]) before a `Run` step. Cohort
    /// deliveries are queried through the cohort itself, not the
    /// transcript.
    pub fn cohort_mut(&mut self) -> Option<&mut ClientCohort> {
        self.cohort.as_mut()
    }

    /// Mutable access to the underlying deployment, for attaching
    /// adversarial taps *before* [`Simulator::run`] — the way tests
    /// prove the invariant checker catches real tampering (a tap that
    /// drops requests mid-chain must fail the round it touches).
    pub fn chain_mut(&mut self) -> &mut StreamingChain {
        &mut self.chain
    }

    /// Applies one scripted step immediately. Tests use this to
    /// interleave script steps with direct cohort access
    /// ([`Simulator::cohort_mut`]) that the script language cannot
    /// express; [`Simulator::run`] is the normal entry point.
    ///
    /// # Errors
    ///
    /// [`SimError::Invariant`] the moment any per-round invariant
    /// fails, exactly as during [`Simulator::run`].
    ///
    /// # Panics
    ///
    /// On script misuse (see the module docs).
    pub fn step(&mut self, step: Step) -> Result<(), SimError> {
        self.apply(step)
    }

    fn apply(&mut self, step: Step) -> Result<(), SimError> {
        match step {
            Step::Join(n) => {
                let first = self.clients.len();
                for _ in 0..n {
                    self.join_one();
                }
                self.transcript
                    .push(format!("event join clients {first}..{}", first + n));
            }
            Step::SetOnline(index, online) => {
                assert!(!self.clients[index].left, "script bug: client {index} left");
                self.clients[index].online = online;
                self.transcript
                    .push(format!("event online client {index} {online}"));
            }
            Step::Leave(index) => {
                self.clients[index].online = false;
                self.clients[index].left = true;
                self.transcript.push(format!("event leave client {index}"));
            }
            Step::Dial { caller, callee } => {
                let pk = self.clients[callee].client.public_key();
                self.clients[caller]
                    .client
                    .dial(pk)
                    .expect("script bug: caller has no free conversation slot");
                self.clients[caller].dial_mirror.push_back(callee);
                self.transcript
                    .push(format!("event dial caller {caller} callee {callee}"));
            }
            Step::AcceptAll => {
                for index in 0..self.clients.len() {
                    let pending: Vec<PublicKey> =
                        self.clients[index].client.pending_invitations().to_vec();
                    for caller_pk in pending {
                        let caller = self.by_key[&caller_pk];
                        if self.clients[index]
                            .client
                            .accept_invitation(caller_pk)
                            .is_ok()
                        {
                            self.transcript
                                .push(format!("event accept client {index} caller {caller}"));
                        } else {
                            self.transcript.push(format!(
                                "event accept-failed client {index} caller {caller}"
                            ));
                        }
                    }
                }
            }
            Step::Queue { from, to, body } => {
                let pk = self.clients[to].client.public_key();
                self.clients[from]
                    .client
                    .queue_message(&pk, &body)
                    .expect("script bug: no active conversation or body too long");
                self.transcript.push(format!(
                    "event queue from {from} to {to} body {}",
                    hex(&body)
                ));
            }
            Step::Observe { link } => {
                let tap = Arc::new(Mutex::new(SizeRecorder::default()));
                let dyn_tap: Arc<Mutex<dyn Tap>> = tap.clone();
                self.attach_exclusive_tap(link, dyn_tap);
                self.recorders.push((link, tap));
                self.transcript
                    .push(format!("event observe link {}", LinkId::Hop(link as u32)));
            }
            Step::StallLink { link, millis } => {
                self.attach_exclusive_tap(
                    link,
                    Arc::new(Mutex::new(StallLink {
                        delay: std::time::Duration::from_millis(millis),
                    })),
                );
                self.transcript.push(format!(
                    "event stall link {} millis {millis}",
                    LinkId::Hop(link as u32)
                ));
            }
            Step::CrashLink { link, round_offset } => {
                self.pending_crash = Some((link, round_offset));
                self.transcript.push(format!(
                    "event crash-armed link {} offset {round_offset}",
                    LinkId::Hop(link as u32)
                ));
            }
            Step::Population(n) => {
                if self.cohort.is_none() {
                    let server_pks = self.chain.server_public_keys();
                    if self.tables.is_none() {
                        self.tables = Some(Client::chain_tables(&server_pks));
                    }
                    let tables = self.tables.clone().expect("tables built above");
                    self.cohort = Some(ClientCohort::new(
                        self.config.clone(),
                        self.scenario.seed ^ COHORT_SEED_XOR,
                        &server_pks,
                        tables,
                    ));
                }
                let cohort = self.cohort.as_mut().expect("created above");
                let first = cohort.len();
                cohort.join(n);
                self.transcript
                    .push(format!("event population clients {first}..{}", first + n));
            }
            Step::Run(plans) => self.run_schedule(&plans)?,
        }
        Ok(())
    }

    /// The per-object participants as disjoint `&mut Client`s, in
    /// participant order, for the parallel request builders.
    fn selected_clients(&mut self, participants: &[usize]) -> Vec<&mut Client> {
        let mut wanted = participants.iter().copied().peekable();
        self.clients
            .iter_mut()
            .enumerate()
            .filter_map(|(i, sim_client)| {
                if wanted.peek() == Some(&i) {
                    wanted.next();
                    Some(&mut sim_client.client)
                } else {
                    None
                }
            })
            .collect()
    }

    fn join_one(&mut self) {
        let keypair = Keypair::generate(&mut self.rng);
        let mut client = Client::new(
            format!("client-{}", self.clients.len()),
            keypair,
            self.config.clone(),
        );
        let server_pks = self.chain.server_public_keys();
        if self.tables.is_none() {
            self.tables = Some(Client::chain_tables(&server_pks));
        }
        client.set_chain_tables(
            self.tables.clone().expect("tables built above"),
            &server_pks,
        );
        self.by_key.insert(client.public_key(), self.clients.len());
        self.clients.push(SimClient {
            client,
            online: true,
            left: false,
            dial_mirror: VecDeque::new(),
        });
    }

    fn participants(&self) -> Vec<usize> {
        (0..self.clients.len())
            .filter(|&i| self.clients[i].online && !self.clients[i].left)
            .collect()
    }

    /// Attaches a tap, refusing to clobber one already on the link —
    /// [`vuvuzela_net::Link`] holds at most one tap, so a script that
    /// stacks `Observe`/`StallLink`/`CrashLink` on the same link would
    /// otherwise silently lose the earlier tap and fail the tap-count
    /// invariant with a violation that is really harness mis-wiring.
    ///
    /// # Panics
    ///
    /// On script misuse: the link is already tapped.
    fn attach_exclusive_tap(&mut self, link: usize, tap: Arc<Mutex<dyn Tap>>) {
        self.chain
            .chain_mut()
            .link_mut(link)
            .try_attach_tap(tap)
            .unwrap_or_else(|err| {
                panic!("script bug: {err} (one tap per link)");
            });
    }

    /// Pairs of participants in a mutual active conversation. Constant
    /// across a schedule (conversation state only changes between
    /// schedules), so callers compute it once per `Run`; peer sets are
    /// snapshotted once to keep the pair scan allocation-free.
    fn mutual_pairs(&self, participants: &[usize]) -> u64 {
        let peers: Vec<(PublicKey, Vec<PublicKey>)> = participants
            .iter()
            .map(|&i| {
                (
                    self.clients[i].client.public_key(),
                    self.clients[i].client.active_peers(),
                )
            })
            .collect();
        let mut pairs = 0u64;
        for (pos, (pk_i, peers_i)) in peers.iter().enumerate() {
            for (pk_j, peers_j) in &peers[pos + 1..] {
                if peers_i.contains(pk_j) && peers_j.contains(pk_i) {
                    pairs += 1;
                }
            }
        }
        pairs
    }

    fn run_schedule(&mut self, plans: &[RoundPlan]) -> Result<(), SimError> {
        let server_pks = self.chain.server_public_keys();
        let num_drops = self.scenario.num_drops;
        let participants = self.participants();

        // Arm a pending crash fault against this schedule's rounds.
        let crash_link = if let Some((link, offset)) = self.pending_crash.take() {
            let trigger = self.next_round + offset;
            self.attach_exclusive_tap(link, Arc::new(Mutex::new(CrashOnRound::new(trigger))));
            Some(link)
        } else {
            None
        };
        // Mutual conversation state cannot change mid-schedule: one
        // count serves every conversation round below. The cohort's
        // internal pairs ride on top of the per-object count.
        let mutual_pairs = self.mutual_pairs(&participants)
            + self.cohort.as_ref().map_or(0, ClientCohort::mutual_pairs);
        let seed = self.scenario.seed;
        let workers = self.config.workers;

        // Build every round's client batch up front (clients pipeline
        // requests; replies for the whole schedule arrive afterwards).
        // Per-object requests are built through the cohort module's
        // parallel builders — the same path for 2 clients or 2 million —
        // and, when a cohort exists, appended to its flat arena so the
        // chain admits one contiguous buffer.
        let mut specs: Vec<RoundSpec> = Vec::with_capacity(plans.len());
        let mut metas: Vec<RoundMeta> = Vec::with_capacity(plans.len());
        for plan in plans {
            let round = self.next_round;
            self.next_round += 1;
            match plan {
                RoundPlan::Conversation => {
                    let selected = self.selected_clients(&participants);
                    let requests = cohort::build_client_requests_parallel(
                        selected,
                        seed,
                        round,
                        &server_pks,
                        workers,
                    );
                    let (individual, layout) = entry::multiplex(requests);
                    let (batch, cohort_requests) = match self.cohort.as_mut() {
                        Some(population) if !population.is_empty() => {
                            let cohort_requests = population.len() * self.config.conversation_slots;
                            let mut buf = population.build_conversation_round(round);
                            for onion in &individual {
                                buf.push_with(|slot| slot.copy_from_slice(onion));
                            }
                            (Batch::Flat(buf), cohort_requests)
                        }
                        _ => (Batch::Vecs(individual), 0),
                    };
                    specs.push(RoundSpec::Conversation { round, batch });
                    metas.push(RoundMeta::Conversation {
                        round,
                        participants: participants.clone(),
                        layout,
                        mutual_pairs,
                        cohort_requests,
                    });
                }
                RoundPlan::Dialing => {
                    let mut real_per_drop = vec![0u64; num_drops as usize];
                    for &id in &participants {
                        if let Some(callee) = self.clients[id].dial_mirror.pop_front() {
                            let pk = self.clients[callee].client.public_key();
                            let drop = InvitationDropIndex::for_recipient(&pk, num_drops);
                            real_per_drop[(drop.0 - 1) as usize] += 1;
                        }
                    }
                    let selected = self.selected_clients(&participants);
                    let individual = cohort::build_dial_requests_parallel(
                        selected,
                        seed,
                        round,
                        num_drops,
                        &server_pks,
                        workers,
                    );
                    let (batch, cohort_clients) = match self.cohort.as_mut() {
                        Some(population) if !population.is_empty() => {
                            let mut buf = population.build_dialing_round(round);
                            for onion in &individual {
                                buf.push_with(|slot| slot.copy_from_slice(onion));
                            }
                            (Batch::Flat(buf), population.len())
                        }
                        _ => (Batch::Vecs(individual), 0),
                    };
                    specs.push(RoundSpec::Dialing {
                        round,
                        batch,
                        num_drops,
                    });
                    metas.push(RoundMeta::Dialing {
                        round,
                        participants: participants.clone(),
                        real_per_drop,
                        cohort_clients,
                    });
                }
            }
        }

        let plan_line: Vec<String> = metas
            .iter()
            .map(|m| format!("{}:{}", m.round(), m.round_type().as_str()))
            .collect();
        self.transcript
            .push(format!("schedule rounds [{}]", plan_line.join(",")));

        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.chain.run_mixed_schedule(specs)
        }));

        match outcome {
            Ok(outcomes) => self.process_completed(&metas, outcomes, crash_link)?,
            Err(_panic) => self.process_abort(&metas, crash_link),
        }
        Ok(())
    }

    /// Round-abort semantics (see the crate docs): the whole schedule
    /// yields nothing; servers and clients discard the dead rounds'
    /// state; the conservative ledger still charges every scheduled
    /// round. Nothing timing-dependent reaches the transcript.
    fn process_abort(&mut self, metas: &[RoundMeta], crash_link: Option<usize>) {
        self.schedules_aborted += 1;
        let rounds: Vec<String> = metas.iter().map(|m| m.round().to_string()).collect();
        self.transcript
            .push(format!("schedule aborted rounds [{}]", rounds.join(",")));
        if let Some(link) = crash_link {
            self.chain.chain_mut().link_mut(link).detach_tap();
        }
        let _dropped = self.chain.abort_in_flight_rounds();
        for sim_client in &mut self.clients {
            sim_client.client.expire_pending(self.next_round);
        }
        if let Some(population) = self.cohort.as_mut() {
            population.expire_pending(self.next_round);
        }
        // Partial rounds may have leaked observable traffic: charge them.
        for meta in metas {
            let protocol = match meta {
                RoundMeta::Conversation { .. } => Protocol::Conversation,
                RoundMeta::Dialing { .. } => Protocol::Dialing,
            };
            let spent = self.ledger.charge(protocol);
            self.last_spent[protocol_slot(protocol)] = spent;
        }
        let conversation = self.last_spent[protocol_slot(Protocol::Conversation)];
        let dialing = self.last_spent[protocol_slot(Protocol::Dialing)];
        self.transcript.push(format!(
            "ledger conversation eps {:e} delta {:e} dialing eps {:e} delta {:e}",
            conversation.epsilon, conversation.delta, dialing.epsilon, dialing.delta
        ));
        // Tap observations of an aborted schedule are timing-dependent:
        // discard them wholesale.
        for (_, recorder) in &self.recorders {
            recorder.lock().batches.clear();
        }
    }

    fn process_completed(
        &mut self,
        metas: &[RoundMeta],
        outcomes: Vec<RoundOutcome>,
        crash_link: Option<usize>,
    ) -> Result<(), SimError> {
        assert_eq!(
            metas.len(),
            outcomes.len(),
            "one outcome per scheduled round"
        );
        if let Some(link) = crash_link {
            // The fault was armed but its round drained before the
            // panic could land — not expected for bundled scenarios,
            // but defined: detach and continue.
            self.chain.chain_mut().link_mut(link).detach_tap();
        }
        let chain_len = self.config.chain_len as u64;
        let (conv_singles, conv_pairs) = self.conversation_noise_bounds();
        let dial_draw = self.dialing_noise_bounds();
        let mut tap_shapes: BTreeMap<u64, ScheduleShape> = BTreeMap::new();
        let mut last_dialing: Option<(u64, Vec<usize>)> = None;

        for (meta, outcome) in metas.iter().zip(outcomes) {
            match (meta, outcome) {
                (
                    RoundMeta::Conversation {
                        round,
                        participants,
                        layout,
                        mutual_pairs,
                        cohort_requests,
                    },
                    RoundOutcome::Conversation { replies, .. },
                ) => {
                    self.complete_conversation_round(
                        *round,
                        participants,
                        layout,
                        *mutual_pairs,
                        *cohort_requests,
                        replies,
                    )?;
                    tap_shapes.insert(
                        *round,
                        ScheduleShape {
                            is_conversation: true,
                            submitted: *cohort_requests as u64
                                + participants.len() as u64 * self.config.conversation_slots as u64,
                            noise_per_server_lo: conv_singles.0 + 2 * conv_pairs.0,
                            noise_per_server_hi: conv_singles.1 + 2 * conv_pairs.1,
                        },
                    );
                }
                (
                    RoundMeta::Dialing {
                        round,
                        participants,
                        real_per_drop,
                        cohort_clients,
                    },
                    RoundOutcome::Dialing { timing },
                ) => {
                    self.complete_dialing_round(
                        *round,
                        participants,
                        real_per_drop,
                        *cohort_clients,
                        timing.backward.len() as u64,
                    )?;
                    tap_shapes.insert(
                        *round,
                        ScheduleShape {
                            is_conversation: false,
                            submitted: (*cohort_clients + participants.len()) as u64,
                            noise_per_server_lo: u64::from(self.scenario.num_drops) * dial_draw.0,
                            noise_per_server_hi: u64::from(self.scenario.num_drops) * dial_draw.1,
                        },
                    );
                    last_dialing = Some((*round, participants.clone()));
                }
                _ => {
                    self.note(Err(InvariantViolation {
                        round: Some(meta.round()),
                        invariant: "schedule-drain",
                        detail: "outcome kind does not match its RoundSpec".to_string(),
                    }))?;
                    continue;
                }
            }
            self.rounds_completed += 1;
        }

        // Invitation scans: only the schedule's last dialing round's
        // drops still exist (the deployment retains one round, §5.5).
        if let Some((round, participants)) = last_dialing {
            self.scan_invitations(round, &participants);
        }

        // Clean drain: no server may retain any round state.
        for i in 0..self.config.chain_len {
            let in_flight = self.chain.chain().server(i).in_flight_rounds();
            if in_flight != 0 {
                self.note(Err(InvariantViolation {
                    round: None,
                    invariant: "schedule-drain",
                    detail: format!("server {i} retains state for {in_flight} rounds"),
                }))?;
            }
        }

        self.check_taps(&tap_shapes, chain_len)?;
        Ok(())
    }

    fn complete_conversation_round(
        &mut self,
        round: u64,
        participants: &[usize],
        layout: &entry::RoundLayout,
        mutual_pairs: u64,
        cohort_requests: usize,
        replies: Vec<Vec<u8>>,
    ) -> Result<(), SimError> {
        let chain_len = self.config.chain_len as u64;
        let replies_len = replies.len() as u64;
        let cohort_clients = cohort_requests / self.config.conversation_slots.max(1);
        let total_participants = cohort_clients + participants.len();
        let observables = match self.find_conversation_observables(round) {
            Some(obs) => *obs,
            None => {
                // No histogram means nothing to check or infer; still
                // charge (the round started — the adversary observed
                // traffic) and keep going.
                self.note(Err(InvariantViolation {
                    round: Some(round),
                    invariant: "noise-covered-deaddrops",
                    detail: "no observables recorded for a completed round".to_string(),
                }))?;
                let spent = self.charge(round, Protocol::Conversation)?;
                self.transcript.push(format!(
                    "round {round} conversation participants {total_participants} \
                     missing-observables eps {:e} delta {:e}",
                    spent.epsilon, spent.delta
                ));
                return Ok(());
            }
        };
        let onion_width = onion::wrapped_len(EXCHANGE_REQUEST_LEN, self.config.chain_len) as u64;
        let (singles, pairs) = self.conversation_noise_bounds();
        let check = ConversationRoundCheck {
            round,
            participants: total_participants as u64,
            slots: self.config.conversation_slots as u64,
            mutual_pairs,
            observables: &observables,
            client_link_forward: self
                .chain
                .chain()
                .client_link()
                .round_traffic(round, vuvuzela_net::Direction::Forward),
            onion_width,
            replies: replies_len,
        };
        let submitted = check.participants * check.slots;
        // Noted separately so tolerant mode grades participation and
        // the histogram independently — a replies mismatch must not
        // mask a histogram excursion in the same round.
        self.note(check_conversation_participation(&check))?;
        self.note(check_conversation_histogram(
            chain_len, singles, pairs, &check,
        ))?;
        if matches!(self.config.noise_mode, vuvuzela_dp::NoiseMode::Sampled) {
            // Infer this round's total noise draws from the histogram
            // for the end-of-run concentration check. Signed: tampering
            // can push the inferred counts below zero.
            let noising = chain_len - 1;
            let base_m1 = i128::from(submitted) - 2 * i128::from(mutual_pairs);
            self.soak.record_conversation(
                noising,
                i128::from(observables.m1) - base_m1,
                i128::from(observables.m2) - i128::from(mutual_pairs),
            );
        }

        // Hand replies back and transcribe the deliveries they unlock.
        // The cohort's replies head the batch (its requests did); the
        // per-object participants' replies are demultiplexed from the
        // tail. A batch an adversary shrank below the cohort's share is
        // treated as dropped for the cohort (its reply keys expire) and
        // as `None`s for everyone behind it.
        let mut replies = replies;
        let individual_replies = if cohort_requests > 0 && replies.len() >= cohort_requests {
            let tail = replies.split_off(cohort_requests);
            if let Some(population) = self.cohort.as_mut() {
                population.handle_conversation_replies(round, &replies);
            }
            tail
        } else if cohort_requests > 0 {
            if let Some(population) = self.cohort.as_mut() {
                population.expire_pending(round + 1);
            }
            Vec::new()
        } else {
            replies
        };
        let per_client = entry::demultiplex(layout, individual_replies);
        for (&id, client_replies) in participants.iter().zip(per_client) {
            self.clients[id]
                .client
                .handle_conversation_replies(round, client_replies);
        }
        let spent = self.charge(round, Protocol::Conversation)?;
        self.transcript.push(format!(
            "round {round} conversation participants {total_participants} submitted {} \
             mutual {mutual_pairs} m1 {} m2 {} mmany {} total {} eps {:e} delta {:e}",
            total_participants as u64 * self.config.conversation_slots as u64,
            observables.m1,
            observables.m2,
            observables.m_many,
            observables.total_requests,
            spent.epsilon,
            spent.delta
        ));
        for &id in participants {
            let peers = self.clients[id].client.active_peers();
            for pk in peers {
                let msgs = self.clients[id].client.delivered_from(&pk);
                let seen = self.delivered_seen.entry((id, pk)).or_insert(0);
                let from = self.by_key[&pk];
                for body in &msgs[*seen..] {
                    self.delivered += 1;
                    self.transcript.push(format!(
                        "delivered round {round} client {id} from {from} body {}",
                        hex(body)
                    ));
                }
                *seen = msgs.len();
            }
        }
        Ok(())
    }

    fn complete_dialing_round(
        &mut self,
        round: u64,
        participants: &[usize],
        real_per_drop: &[u64],
        cohort_clients: usize,
        backward_stages: u64,
    ) -> Result<(), SimError> {
        let chain_len = self.config.chain_len as u64;
        let total_participants = cohort_clients + participants.len();
        let observables = match self.find_dialing_observables(round) {
            Some(obs) => obs.clone(),
            None => {
                self.note(Err(InvariantViolation {
                    round: Some(round),
                    invariant: "noise-covered-deaddrops",
                    detail: "no observables recorded for a completed round".to_string(),
                }))?;
                let spent = self.charge(round, Protocol::Dialing)?;
                self.transcript.push(format!(
                    "round {round} dialing participants {total_participants} \
                     missing-observables eps {:e} delta {:e}",
                    spent.epsilon, spent.delta
                ));
                return Ok(());
            }
        };
        let onion_width = onion::wrapped_len(DIAL_REQUEST_LEN, self.config.chain_len) as u64;
        let client_link = self.chain.chain().client_link();
        let check = DialingRoundCheck {
            round,
            participants: total_participants as u64,
            real_per_drop,
            observables: &observables,
            client_link_forward: client_link.round_traffic(round, vuvuzela_net::Direction::Forward),
            client_link_backward: client_link
                .round_traffic(round, vuvuzela_net::Direction::Backward),
            onion_width,
            backward_stages,
        };
        let per_draw = self.dialing_noise_bounds();
        self.note(check_dialing_participation(&check))?;
        self.note(check_dialing_counts(chain_len, per_draw, &check))?;
        if matches!(self.config.noise_mode, vuvuzela_dp::NoiseMode::Sampled)
            && observables.counts.len() == real_per_drop.len()
        {
            let inferred = observables
                .counts
                .iter()
                .zip(real_per_drop)
                .map(|(&count, &real)| i128::from(count) - i128::from(real));
            self.soak.record_dialing(chain_len, inferred);
        }
        let spent = self.charge(round, Protocol::Dialing)?;
        let counts: Vec<String> = observables.counts.iter().map(u64::to_string).collect();
        self.transcript.push(format!(
            "round {round} dialing participants {total_participants} drops {} counts [{}] \
             noop {} eps {:e} delta {:e}",
            self.scenario.num_drops,
            counts.join(","),
            observables.noop_writes,
            spent.epsilon,
            spent.delta
        ));
        Ok(())
    }

    fn scan_invitations(&mut self, round: u64, participants: &[usize]) {
        let num_drops = self.scenario.num_drops;
        for &id in participants {
            let drop = self.clients[id].client.invitation_drop(num_drops);
            let Some(contents) = self.chain.download_drop(drop) else {
                continue;
            };
            let found = self.clients[id].client.scan_invitation_drop(&contents);
            if !found.is_empty() {
                let mut callers: Vec<usize> = found.iter().map(|pk| self.by_key[pk]).collect();
                callers.sort_unstable();
                let callers: Vec<String> = callers.iter().map(usize::to_string).collect();
                self.transcript.push(format!(
                    "scan round {round} client {id} callers [{}]",
                    callers.join(",")
                ));
            }
        }
    }

    fn charge(
        &mut self,
        round: u64,
        protocol: Protocol,
    ) -> Result<vuvuzela_dp::ComposedPrivacy, SimError> {
        let spent = self.ledger.charge(protocol);
        let previous = self.last_spent[protocol_slot(protocol)];
        // The charge invariant recomputes the per-round (ε, δ) from the
        // noise the ledger *charges with* — the claimed parameters when
        // a ledger override is in play, the deployed ones otherwise.
        let (conversation_noise, dialing_noise) = match self.scenario.ledger_noise {
            Some(claimed) => (claimed.conversation, claimed.dialing),
            None => (self.config.conversation_noise, self.config.dialing_noise),
        };
        let (mu, b) = match protocol {
            Protocol::Conversation => (conversation_noise.mu, conversation_noise.b),
            Protocol::Dialing => (dialing_noise.mu, dialing_noise.b),
        };
        self.note(check_privacy_charge(
            round,
            protocol,
            self.ledger.rounds(protocol),
            mu,
            b,
            LEDGER_D,
            spent,
            previous,
        ))?;
        self.last_spent[protocol_slot(protocol)] = spent;
        Ok(spent)
    }

    fn find_conversation_observables(
        &self,
        round: u64,
    ) -> Option<&vuvuzela_core::observables::ConversationObservables> {
        self.chain
            .chain()
            .conversation_observables()
            .iter()
            .rev()
            .find(|(r, _)| *r == round)
            .map(|(_, obs)| obs)
    }

    fn find_dialing_observables(
        &self,
        round: u64,
    ) -> Option<&vuvuzela_core::observables::DialingObservables> {
        self.chain
            .chain()
            .dialing_observables()
            .iter()
            .rev()
            .find(|(r, _)| *r == round)
            .map(|(_, obs)| obs)
    }

    /// Drains every recorder, re-orders its observations canonically,
    /// checks invariant 5, and transcribes one line per (link, round,
    /// direction).
    fn check_taps(
        &mut self,
        shapes: &BTreeMap<u64, ScheduleShape>,
        chain_len: u64,
    ) -> Result<(), SimError> {
        // Taken (and restored) so `note` can borrow `self` inside the
        // loop; a fail-fast error consumes the simulator anyway.
        let recorders = std::mem::take(&mut self.recorders);
        for (link, recorder) in &recorders {
            let link = *link;
            let mut batches: Vec<(u64, bool, Vec<usize>)> =
                recorder.lock().batches.drain(..).collect();
            // Stage concurrency makes arrival order timing-dependent;
            // canonical order is (round, forward-first).
            batches.sort_by_key(|(round, forward, _)| (*round, !*forward));
            // Onion widths depend on the chain position being tapped:
            // `remaining` layers are still wrapped at this link.
            let remaining = chain_len as usize - link;
            let link_shapes: BTreeMap<u64, TapRoundShape> = shapes
                .iter()
                .map(|(&round, shape)| {
                    let payload = if shape.is_conversation {
                        EXCHANGE_REQUEST_LEN
                    } else {
                        DIAL_REQUEST_LEN
                    };
                    (
                        round,
                        TapRoundShape {
                            is_conversation: shape.is_conversation,
                            submitted: shape.submitted,
                            forward_width: onion::wrapped_len(payload, remaining) as u64,
                            backward_width: (EXCHANGE_RESPONSE_LEN
                                + remaining * onion::REPLY_LAYER_OVERHEAD)
                                as u64,
                            noise_per_server_lo: shape.noise_per_server_lo,
                            noise_per_server_hi: shape.noise_per_server_hi,
                        },
                    )
                })
                .collect();
            let checked = check_tap_sizes(link, &link_shapes, &batches);
            self.note(checked)?;
            for (round, forward, sizes) in &batches {
                self.transcript.push(format!(
                    "tap link {} round {round} {} onions {} width {}",
                    LinkId::Hop(link as u32),
                    if *forward { "forward" } else { "backward" },
                    sizes.len(),
                    sizes.first().copied().unwrap_or(0)
                ));
            }
        }
        self.recorders = recorders;
        Ok(())
    }
}

/// The link-independent shape of one completed round's traffic; the
/// per-link [`TapRoundShape`] (widths depend on chain position) is
/// derived from it in [`Simulator::check_taps`].
struct ScheduleShape {
    is_conversation: bool,
    submitted: u64,
    noise_per_server_lo: u64,
    noise_per_server_hi: u64,
}

fn protocol_slot(protocol: Protocol) -> usize {
    match protocol {
        Protocol::Conversation => 0,
        Protocol::Dialing => 1,
    }
}

/// Convenience: build and run a scenario in one call.
///
/// # Errors
///
/// See [`Simulator::run`].
pub fn run_scenario(scenario: &Scenario) -> Result<SimReport, SimError> {
    Simulator::new(scenario.clone()).run()
}
