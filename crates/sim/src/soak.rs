//! Sampled-noise soak runs under an active adversary.
//!
//! A soak case is one bundled scenario, switched to
//! [`vuvuzela_dp::NoiseMode::Sampled`], extended with three extra
//! mixed schedules (so the distributional checks see enough draws),
//! and run with one tampering tap from [`vuvuzela_adversary::taps`]
//! attached to chain link 0 — the entry→server-0 hop, which no bundled
//! scenario taps itself. The simulator runs in tolerant mode
//! ([`crate::simulator::Simulator::run_collecting`]): tampered rounds
//! degrade instead of wedging, and every invariant violation is
//! transcribed and collected.
//!
//! Every case carries an *annotation*: the exact set of invariants the
//! tampering is expected to trip ([`SoakCase::expect_trip`]). The
//! verdict is set equality — a tripped invariant that was not declared
//! is a failure, and so is a declared trip that did not happen (an
//! un-tripped expectation means the checker lost its teeth). The
//! annotations are pinned against the seeded runs; see
//! [`expected_trips`] for the per-case reasoning.

use crate::invariants::InvariantViolation;
use crate::scenario::{bundled_matrix, RoundPlan, Scale, Scenario, Step};
use crate::simulator::{SimReport, Simulator};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::Arc;
use vuvuzela_adversary::taps::{DelayBatch, DropFraction, InjectOnions, ReplayBatch, RoundWindow};
use vuvuzela_net::Tap;

/// The chain link every soak strategy tampers with: entry→server 0.
/// Kept free by every bundled scenario (observers sit on links 1–2,
/// the crash fault on link 1), so the strategy axis composes with the
/// whole matrix.
pub const ADVERSARY_LINK: usize = 0;

/// Rounds a cross-round strategy ([`AdversaryStrategy::Delay`],
/// [`AdversaryStrategy::Replay`]) captures and re-emits. Chosen inside
/// the appended soak schedules for every bundled scenario (the longest
/// base script ends before round 10) so the capture can never land in
/// an abortable schedule, which would make the tap's state — and the
/// transcript — timing-dependent.
const CAPTURE_ROUND: u64 = 10;
const RELEASE_ROUND: u64 = 12;

/// One tampering strategy from the taps toolbox, link- and
/// round-addressed for the soak matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AdversaryStrategy {
    /// No tampering: the honest sampled-noise baseline every
    /// distributional invariant must survive.
    None,
    /// Drop every other onion ([`DropFraction`] 1/2) from round 1 on.
    /// Round 0 is exempt: it carries the scenarios' first invitations,
    /// and dropping those would change which conversations *exist* —
    /// a script-shape change, not a degradation.
    Drop,
    /// Hold round 10's forward batch and merge it into round 12
    /// ([`DelayBatch`]).
    Delay,
    /// Copy round 10's forward batch and append it to round 12
    /// ([`ReplayBatch`]).
    Replay,
    /// Add 8 width-matched garbage onions per forward transfer from
    /// round 1 on ([`InjectOnions`]).
    Inject,
}

impl AdversaryStrategy {
    /// Every strategy, in matrix order.
    pub const ALL: [AdversaryStrategy; 5] = [
        AdversaryStrategy::None,
        AdversaryStrategy::Drop,
        AdversaryStrategy::Delay,
        AdversaryStrategy::Replay,
        AdversaryStrategy::Inject,
    ];

    /// Stable name, used in case names and artefact files.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AdversaryStrategy::None => "none",
            AdversaryStrategy::Drop => "drop",
            AdversaryStrategy::Delay => "delay",
            AdversaryStrategy::Replay => "replay",
            AdversaryStrategy::Inject => "inject",
        }
    }

    /// Builds the strategy's tap, if it has one.
    #[must_use]
    pub fn build_tap(self) -> Option<Arc<Mutex<dyn Tap>>> {
        match self {
            AdversaryStrategy::None => None,
            AdversaryStrategy::Drop => Some(Arc::new(Mutex::new(DropFraction {
                numerator: 1,
                denominator: 2,
                window: RoundWindow::from(1),
            }))),
            AdversaryStrategy::Delay => Some(Arc::new(Mutex::new(DelayBatch::new(
                CAPTURE_ROUND,
                RELEASE_ROUND,
            )))),
            AdversaryStrategy::Replay => Some(Arc::new(Mutex::new(ReplayBatch::new(
                CAPTURE_ROUND,
                RELEASE_ROUND,
            )))),
            AdversaryStrategy::Inject => Some(Arc::new(Mutex::new(InjectOnions {
                count: 8,
                window: RoundWindow::from(1),
                seed: 0xAD5EED,
            }))),
        }
    }
}

/// One annotated soak case: scenario × strategy plus the invariants the
/// tampering is expected to trip.
pub struct SoakCase {
    /// The sampled-noise scenario (already renamed and extended).
    pub scenario: Scenario,
    /// The tampering applied to [`ADVERSARY_LINK`].
    pub strategy: AdversaryStrategy,
    /// The exact set of invariant names expected to trip. Surviving
    /// all of these — or tripping anything else — fails the case.
    pub expect_trip: BTreeSet<&'static str>,
}

/// What one soak case produced.
pub struct SoakOutcome {
    /// Case name (`scenario__strategy`).
    pub name: String,
    /// The tolerant-mode report; its transcript includes every
    /// `violation …` line.
    pub report: SimReport,
    /// Every collected violation, in occurrence order.
    pub violations: Vec<InvariantViolation>,
    /// The distinct invariant names that tripped.
    pub tripped: BTreeSet<&'static str>,
    /// Invariants that tripped without being declared in the
    /// annotation.
    pub unexpected: Vec<&'static str>,
    /// Declared invariants that failed to trip.
    pub missing: Vec<&'static str>,
}

impl SoakOutcome {
    /// Whether the tripped set matched the annotation exactly.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.unexpected.is_empty() && self.missing.is_empty()
    }
}

/// The bundled soak matrix: every bundled scenario crossed with every
/// [`AdversaryStrategy`], in sampled noise mode, each base script
/// extended with three additional mixed schedules.
#[must_use]
pub fn soak_matrix(scale: Scale) -> Vec<SoakCase> {
    let mut cases = Vec::new();
    for base in bundled_matrix(scale) {
        for strategy in AdversaryStrategy::ALL {
            cases.push(soak_case(base.clone(), strategy));
        }
    }
    cases
}

/// Builds one annotated soak case from a bundled scenario.
#[must_use]
pub fn soak_case(base: Scenario, strategy: AdversaryStrategy) -> SoakCase {
    let expect_trip = expected_trips(&base.name, strategy);
    let mut scenario = base;
    scenario.name = format!("{}__{}", scenario.name, strategy.name());
    scenario.noise_mode = vuvuzela_dp::NoiseMode::Sampled;
    // Three extra mixed schedules: enough rounds past the longest base
    // script that the cross-round strategies' capture/release rounds
    // exist in every scenario, and enough draws that the concentration
    // windows have statistical teeth.
    for _ in 0..3 {
        scenario.steps.push(Step::Run(vec![
            RoundPlan::Conversation,
            RoundPlan::Conversation,
            RoundPlan::Dialing,
            RoundPlan::Conversation,
        ]));
    }
    SoakCase {
        scenario,
        strategy,
        expect_trip,
    }
}

/// Runs one soak case to completion — tampered rounds degrade, never
/// wedge — and grades the tripped invariants against the annotation.
#[must_use]
pub fn run_soak_case(case: &SoakCase) -> SoakOutcome {
    let mut sim = Simulator::new(case.scenario.clone());
    if let Some(tap) = case.strategy.build_tap() {
        sim.chain_mut()
            .chain_mut()
            .link_mut(ADVERSARY_LINK)
            .attach_tap(tap);
    }
    let (report, violations) = sim.run_collecting();
    let tripped: BTreeSet<&'static str> = violations.iter().map(|v| v.invariant).collect();
    let unexpected: Vec<&'static str> = tripped.difference(&case.expect_trip).copied().collect();
    let missing: Vec<&'static str> = case.expect_trip.difference(&tripped).copied().collect();
    SoakOutcome {
        name: case.scenario.name.clone(),
        report,
        violations,
        tripped,
        unexpected,
        missing,
    }
}

/// The pinned annotation table: which invariants each scenario ×
/// strategy pair trips, with the reasoning. Pinned against the seeded
/// smoke-scale runs (`sim_soak` verifies full-scale separately in
/// `--full` mode, which shares the table).
///
/// The shape of the table follows from how each strategy interacts
/// with the pipeline's graceful degradation:
///
/// - **`uniform-participation` trips via the reply count**: replies
///   are *not* padded back to one per submission — a dropped or
///   delayed onion loses its reply slot, and a replayed or injected
///   onion that fails authentication is substituted with a noise
///   request whose reply slot is a filler, so replies over- or
///   undershoot the submission count in every tampered conversation
///   round. The only escapes are tampering that lands exclusively on
///   a *dialing* round (forward-only, no replies to count).
/// - **Dropping forward onions deflates the histogram** below the
///   per-round noise window (`noise-covered-deaddrops`), and the
///   per-round systematic deficit drags the empirical noise mean out
///   of its `k·σ/√n` concentration window (`noise-concentration`).
///   Injection is the mirror image: the garbage fails authentication
///   downstream and is substituted with extra noise singles (or no-op
///   dial writes), inflating both per-round windows and the run-long
///   mean.
/// - **Delay/Replay are one-shot**: only the capture/release rounds
///   (10 and 12) are disturbed, so the run-long concentration mean
///   usually absorbs them. Whether the per-round windows trip depends
///   on the population against the window width — a surplus of
///   `participants` substituted noise singles clears the `Σ hi`
///   histogram slack only when the scenario is big enough.
/// - **A mid-chain observer sees the batch after the tamper**, so
///   scenarios with an `Observe` step (`steady_state` at link 1,
///   `idle_cover` at link 2) also trip `fixed-sizes-under-taps` when
///   the observed count leaves the round's window. `idle_cover`'s
///   observer sits *two* noising servers downstream, so its window is
///   twice as wide and absorbs small surpluses that trip
///   `steady_state`'s.
/// - **`dialing-forward-only`, `privacy-monotone` and
///   `schedule-drain` never trip**: tampering cannot conjure a
///   backward pass, the ledger charges every started round
///   unconditionally, and batch accounting (one batch per round per
///   direction, whatever its contents) keeps the pipeline draining.
#[must_use]
pub fn expected_trips(base: &str, strategy: AdversaryStrategy) -> BTreeSet<&'static str> {
    const UNIFORM: &str = "uniform-participation";
    const COVERED: &str = "noise-covered-deaddrops";
    const CONCENTRATION: &str = "noise-concentration";
    const SIZES: &str = "fixed-sizes-under-taps";
    let mut trips: BTreeSet<&'static str> = BTreeSet::new();
    match strategy {
        AdversaryStrategy::None => {}
        AdversaryStrategy::Drop => {
            // Half of every round's onions vanish: replies, every
            // per-round histogram window, and the run-long mean trip.
            trips.extend([UNIFORM, COVERED, CONCENTRATION]);
            if matches!(base, "steady_state" | "idle_cover") {
                trips.insert(SIZES);
            }
        }
        AdversaryStrategy::Inject => {
            // Eight garbage onions per transfer become eight extra
            // noise singles per round: same three everywhere. Only
            // steady_state's link-1 observer trips on sizes —
            // idle_cover's link-2 window is wide enough to absorb +8.
            trips.extend([UNIFORM, COVERED, CONCENTRATION]);
            if base == "steady_state" {
                trips.insert(SIZES);
            }
        }
        AdversaryStrategy::Delay => {
            // Capture empties round 10's replies, release doubles
            // round 12's: replies trip both ends. The histogram trips
            // too — except in redial_after_miss (10 clients) and
            // server_fault (12 clients), whose small deficit/surplus
            // stays inside the sampled windows (the odd-n2 leftover
            // accounting widens each singles window by +1 per draw).
            trips.insert(UNIFORM);
            if !matches!(base, "redial_after_miss" | "server_fault") {
                trips.insert(COVERED);
            }
            if matches!(base, "steady_state" | "idle_cover") {
                trips.insert(SIZES);
            }
        }
        AdversaryStrategy::Replay => match base {
            // 48 replayed onions become 48 substituted noise singles
            // in round 12: replies double, and m1 and the observed
            // link-1 count blow past their windows. The run-long
            // singles mean stays inside its concentration window —
            // one disturbed round spreads over ~30 draws, and the
            // odd-n2 leftover bias allowance absorbs the rest.
            "steady_state" => {
                trips.extend([UNIFORM, COVERED, SIZES]);
            }
            // Round 12 is a *dialing* round here: no replies to
            // count, but each replayed request is substituted with a
            // no-op dial write, and the no-op check is exact.
            "dial_storm" => {
                trips.insert(COVERED);
            }
            // Small populations (10 and 12 clients): replies double
            // but the histogram surplus fits inside the sampled
            // windows (widened +1 per draw by the leftover
            // accounting).
            "redial_after_miss" | "server_fault" => {
                trips.insert(UNIFORM);
            }
            // Mid-size populations: replies and the round-12
            // histogram trip; one disturbed round of ~20 extra
            // singles washes out of the run-long mean.
            _ => {
                trips.extend([UNIFORM, COVERED]);
            }
        },
    }
    trips
}
