//! The canonical per-round transcript a simulation emits.
//!
//! A transcript is a plain-text, line-oriented record designed to be
//! **byte-identical for the same scenario** (see the crate docs'
//! determinism contract): no wall-clock values, every concurrent
//! observation re-ordered into canonical order before rendering, and
//! floating-point values printed through Rust's shortest-roundtrip
//! formatter (identical bits ⇒ identical text). The SHA-256 of the
//! rendered bytes is the stability fingerprint CI pins across runs.

use vuvuzela_crypto::sha256::sha256;

/// An append-only transcript.
#[derive(Clone, Debug, Default)]
pub struct Transcript {
    lines: Vec<String>,
}

impl Transcript {
    /// An empty transcript.
    #[must_use]
    pub fn new() -> Transcript {
        Transcript::default()
    }

    /// Appends one record line (must not contain a newline).
    pub fn push(&mut self, line: String) {
        debug_assert!(!line.contains('\n'), "one record per line");
        self.lines.push(line);
    }

    /// Number of record lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the transcript has no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The record lines, in order.
    #[must_use]
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Renders the canonical byte form: every line terminated by `\n`.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Hex SHA-256 of [`Transcript::render`] — the stability
    /// fingerprint.
    #[must_use]
    pub fn sha256_hex(&self) -> String {
        hex(&sha256(self.render().as_bytes()))
    }
}

/// Lowercase hex encoding (used for hashes and message bodies).
#[must_use]
pub fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_hash_are_stable() {
        let mut a = Transcript::new();
        a.push("round 0 kind conversation".to_string());
        a.push("round 1 kind dialing".to_string());
        let mut b = Transcript::new();
        b.push("round 0 kind conversation".to_string());
        b.push("round 1 kind dialing".to_string());
        assert_eq!(a.render(), b.render());
        assert_eq!(a.sha256_hex(), b.sha256_hex());
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());

        b.push("extra".to_string());
        assert_ne!(a.sha256_hex(), b.sha256_hex());
    }

    #[test]
    fn hex_encodes_lowercase() {
        assert_eq!(hex(&[0x00, 0xAB, 0xFF]), "00abff");
    }
}
