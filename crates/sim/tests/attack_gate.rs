//! The attack matrix's acceptance gates, asserted in both directions:
//! the honest deployment stays under the composed (ε′, δ′) bound, and
//! both negative controls — noise off, undersized µ — beat it. Plus
//! the glue contracts: the transcript budget matches an independent
//! dp-crate recomputation, and the strict parser handles real bundled
//! transcripts.

use vuvuzela_adversary::TranscriptView;
use vuvuzela_dp::accounting::combine;
use vuvuzela_dp::{NoiseDistribution, PrivacyLedger, Protocol};
use vuvuzela_sim::{
    attack_matrix, bundled_matrix, run_attack_case, run_scenario, AttackControl, Scale,
};

fn run_control(control: AttackControl) -> vuvuzela_sim::AttackVerdict {
    let case = attack_matrix(Scale::Smoke)
        .into_iter()
        .find(|c| c.control == control)
        .expect("matrix covers every control");
    run_attack_case(&case).expect("case runs").verdict
}

#[test]
fn honest_deployment_stays_within_the_composed_bound() {
    let v = run_control(AttackControl::Honest);
    assert!(v.expect_within_bound);
    assert!(
        v.within_bound,
        "honest advantage {} + slack {} must be ≤ bound {} (ε′={}, δ′={})",
        v.advantage, v.slack, v.bound, v.epsilon, v.delta
    );
    assert!(v.passed);
    // The budget must be meaningful — a vacuous bound (0.5) would make
    // the gate impossible to fail.
    assert!(v.bound < 0.45, "bound {} is close to vacuous", v.bound);
    assert!(v.trials >= 90, "held-out sample too small: {}", v.trials);
}

#[test]
fn noise_off_control_beats_the_claimed_bound() {
    let v = run_control(AttackControl::NoiseOff);
    assert!(!v.expect_within_bound);
    // Zero cover traffic: the twin worlds are perfectly separable.
    assert!(
        v.exceeds_bound,
        "noise-off advantage {} must exceed bound {}",
        v.advantage, v.bound
    );
    assert!(v.passed);
    assert!(
        v.accuracy > 0.95,
        "a noiseless mixnet should be nearly perfectly distinguishable, got {}",
        v.accuracy
    );
}

#[test]
fn undersized_mu_control_beats_the_claimed_bound() {
    let v = run_control(AttackControl::UndersizedMu);
    assert!(!v.expect_within_bound);
    assert!(
        v.exceeds_bound,
        "undersized-µ advantage {} must exceed claimed bound {}",
        v.advantage, v.bound
    );
    assert!(v.passed);
    // The claimed budget (not the actual tiny noise) sets the bound.
    assert!((v.epsilon - honest_budget().0).abs() < 1e-9);
}

/// Independent recomputation of the honest composed budget: 4
/// conversation + 1 dialing rounds at (µ=200, b=40)/(µ=160, b=32)
/// through the dp crate's own ledger.
fn honest_budget() -> (f64, f64) {
    let mut ledger = PrivacyLedger::new(
        NoiseDistribution::new(200.0, 40.0),
        NoiseDistribution::new(160.0, 32.0),
        1e-5,
    );
    ledger.charge(Protocol::Dialing);
    for _ in 0..4 {
        ledger.charge(Protocol::Conversation);
    }
    let total = combine(
        ledger.spent(Protocol::Conversation),
        ledger.spent(Protocol::Dialing),
    );
    (total.epsilon, total.delta)
}

#[test]
fn transcript_budget_matches_independent_dp_recomputation() {
    let case = &attack_matrix(Scale::Smoke)[0];
    let scenario = vuvuzela_sim::twin_scenario(case, 7, true);
    let report = run_scenario(&scenario).expect("runs");
    let view = TranscriptView::parse(&report.transcript.render()).expect("parses");
    let budget = view.composed_budget();
    let (eps, delta) = honest_budget();
    assert!(
        (budget.epsilon - eps).abs() < 1e-12,
        "transcript ε′ {} vs recomputed {}",
        budget.epsilon,
        eps
    );
    assert!((budget.delta - delta).abs() < 1e-12);
}

#[test]
fn parser_reconstructs_a_real_bundled_transcript() {
    // The strict parser must accept every line the simulator emits for
    // a full-featured scenario (taps, scans, deliveries, mixed
    // schedules) while exposing only the adversary-visible fields.
    let scenario = bundled_matrix(Scale::Smoke)
        .into_iter()
        .find(|s| s.name == "steady_state")
        .expect("bundled matrix has steady_state");
    let report = run_scenario(&scenario).expect("runs");
    let view = TranscriptView::parse(&report.transcript.render()).expect("parses");
    assert_eq!(view.scenario, "steady_state");
    assert_eq!(view.servers, 3);
    assert!(view.conversation_rounds().count() >= 5);
    assert!(view.dialing_rounds().count() >= 2);
    assert!(!view.taps.is_empty(), "steady_state observes a link");
    let budget = view.composed_budget();
    assert!(budget.epsilon > 0.0 && budget.delta > 0.0);
    assert_eq!(view.completed_rounds, Some(report.rounds_completed));
}
