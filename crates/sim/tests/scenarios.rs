//! The bundled scenario matrix as integration tests: every scenario
//! runs through the streaming mixed-schedule pipeline with the
//! invariant checker live, and every transcript must be byte-identical
//! across two runs of the same seed (the determinism contract).

use vuvuzela_sim::transcript::hex;
use vuvuzela_sim::{bundled_matrix, run_scenario, RoundPlan, Scale, Scenario, SimReport, Step};

/// Runs a bundled scenario twice, asserting invariant success and a
/// byte-identical transcript, and returns the first report.
fn run_deterministic(name: &str) -> SimReport {
    let scenario = bundled_matrix(Scale::Smoke)
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no bundled scenario named {name}"));
    let first =
        run_scenario(&scenario).unwrap_or_else(|err| panic!("{name}: invariant failure: {err}"));
    let second = run_scenario(&scenario).expect("second run of a passing scenario");
    assert_eq!(
        first.transcript.render(),
        second.transcript.render(),
        "{name}: same seed must give a byte-identical transcript"
    );
    assert_eq!(first.hash, second.hash);
    first
}

#[test]
fn matrix_has_at_least_six_scenarios_with_churn_and_faults() {
    let matrix = bundled_matrix(Scale::Smoke);
    assert!(
        matrix.len() >= 6,
        "bundled matrix shrank to {}",
        matrix.len()
    );
    let names: Vec<&str> = matrix.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"churn_rejoin"), "needs a churn scenario");
    assert!(
        names.contains(&"server_fault"),
        "needs a server-fault scenario"
    );
    // The full-scale matrix carries the paper's µ = 13,000-per-drop storm.
    let full_storm = bundled_matrix(Scale::Full)
        .into_iter()
        .find(|s| s.name == "dial_storm")
        .expect("full matrix has the storm");
    assert_eq!(full_storm.dialing_mu, 13_000.0);
}

#[test]
fn steady_state_delivers_all_pairs() {
    let report = run_deterministic("steady_state");
    // Five pairs, one message each way.
    assert_eq!(report.delivered, 10);
    assert_eq!(report.schedules_aborted, 0);
    assert_eq!(report.rounds_completed, 7);
}

#[test]
fn churn_rejoin_retransmits_to_returning_peer() {
    let report = run_deterministic("churn_rejoin");
    // "sent while you were away" reaches the rejoining client via
    // retransmission; the late joiners' message arrives too. The
    // message to the departed client never delivers.
    assert_eq!(report.delivered, 2);
    assert_eq!(report.schedules_aborted, 0);
    assert!(
        delivered_line(&report, b"sent while you were away").is_some(),
        "retransmitted message must deliver after the peer rejoins"
    );
    assert!(
        delivered_line(&report, b"talking to a ghost").is_none(),
        "a message to a departed client must never deliver"
    );
}

/// The `delivered` transcript line carrying `body`, if any (the `event
/// queue` line also records body hex, so matching must be line-typed).
fn delivered_line<'a>(report: &'a SimReport, body: &[u8]) -> Option<&'a String> {
    let needle = format!("body {}", hex(body));
    report
        .transcript
        .lines()
        .iter()
        .find(|l| l.starts_with("delivered ") && l.contains(&needle))
}

#[test]
fn dial_storm_invites_every_client() {
    let report = run_deterministic("dial_storm");
    // Every client dialed and every online client scans: 32 scan lines.
    let scans = report
        .transcript
        .lines()
        .iter()
        .filter(|l| l.starts_with("scan "))
        .count();
    assert_eq!(scans, 32, "every client finds its invitation in the storm");
    assert_eq!(report.delivered, 1);
}

#[test]
fn idle_cover_is_pure_noise() {
    let report = run_deterministic("idle_cover");
    assert_eq!(report.delivered, 0);
    // Every conversation round's histogram decomposed as pure noise +
    // 20 idle singles (the invariant checker asserted the arithmetic;
    // here we pin the observable shape into the transcript).
    for line in report.transcript.lines() {
        if line.contains(" conversation participants ") {
            assert!(
                line.contains("mutual 0") && line.contains("m2 6"),
                "idle round must show only noise pairs: {line}"
            );
        }
    }
}

#[test]
fn server_slowdown_changes_timing_not_bytes() {
    let stalled = run_deterministic("server_slowdown");
    // The twin scenario: identical script minus the stall tap.
    let mut clean = bundled_matrix(Scale::Smoke)
        .into_iter()
        .find(|s| s.name == "server_slowdown")
        .expect("bundled");
    clean.steps.retain(|s| !matches!(s, Step::StallLink { .. }));
    let clean = run_scenario(&clean).expect("clean twin passes");
    let strip = |r: &SimReport| -> Vec<String> {
        r.transcript
            .lines()
            .iter()
            .filter(|l| !l.starts_with("event stall"))
            .cloned()
            .collect()
    };
    assert_eq!(
        strip(&stalled),
        strip(&clean),
        "a stalled hop may change timing but never any round's bytes"
    );
}

#[test]
fn server_fault_aborts_then_recovers_via_retransmission() {
    let report = run_deterministic("server_fault");
    assert_eq!(report.schedules_aborted, 1);
    // Rounds 1–3 aborted; rounds 0 and 4–6 completed.
    assert_eq!(report.rounds_completed, 4);
    let rendered = report.transcript.render();
    assert!(rendered.contains("schedule aborted rounds [1,2,3]"));
    // The queued message survives the abort and delivers afterwards.
    assert_eq!(report.delivered, 1);
    assert!(delivered_line(&report, b"survives the crash").is_some());
    // Abort charges the ledger conservatively: the post-abort ledger
    // line exists and later rounds keep composing on top of it.
    assert!(rendered.contains("ledger conversation eps"));
}

#[test]
fn redial_lands_after_missed_dialing_round() {
    let report = run_deterministic("redial_after_miss");
    // The first invitation is never scanned (callee offline, drop
    // overwritten); only the re-dial is.
    let scans: Vec<&String> = report
        .transcript
        .lines()
        .iter()
        .filter(|l| l.starts_with("scan ") && l.contains("client 1"))
        .collect();
    assert_eq!(scans.len(), 1, "exactly the re-dialed invitation is found");
    assert!(
        scans[0].starts_with("scan round 2 "),
        "found in the third dialing round"
    );
    assert_eq!(report.delivered, 1);
    assert!(delivered_line(&report, b"second dial worked").is_some());
}

#[test]
fn worker_count_does_not_change_the_transcript() {
    // The determinism contract holds across parallelism levels AND
    // dead-drop exchange shard counts: only the header line that
    // *names* the worker/shard counts may differ.
    let base = bundled_matrix(Scale::Smoke)
        .into_iter()
        .find(|s| s.name == "server_fault")
        .expect("bundled");
    let strip = |r: &SimReport| -> Vec<String> {
        r.transcript
            .lines()
            .iter()
            .filter(|l| !l.starts_with("seed "))
            .cloned()
            .collect()
    };
    let a = run_scenario(&base).expect("baseline passes");
    for (workers, shards) in [(4, base.exchange_shards), (2, 1), (4, 3), (2, 7)] {
        let mut variant = base.clone();
        variant.workers = workers;
        variant.exchange_shards = shards;
        let b = run_scenario(&variant).expect("variant passes");
        assert_eq!(
            strip(&a),
            strip(&b),
            "workers {workers} shards {shards} diverged"
        );
    }
}

#[test]
fn invariant_checker_catches_real_tampering() {
    // A blocking tap mid-chain silently deletes one onion per round;
    // the noise-covered-dead-drops equality must fail the very first
    // round it touches.
    use parking_lot::Mutex;
    use std::sync::Arc;
    use vuvuzela_adversary::taps::KeepOnly;
    use vuvuzela_net::Tap;

    let mut scenario = Scenario::new("tampered", 99);
    scenario.steps.push(Step::Join(8));
    scenario
        .steps
        .push(Step::Run(vec![RoundPlan::Conversation]));
    let mut sim = vuvuzela_sim::Simulator::new(scenario);
    let tap: Arc<Mutex<dyn Tap>> = Arc::new(Mutex::new(KeepOnly {
        indices: (0..7).collect(), // drops the 8th request
        only_round: None,
    }));
    sim.chain_mut().chain_mut().link_mut(0).attach_tap(tap);
    let err = sim.run().expect_err("tampering must violate an invariant");
    let msg = err.to_string();
    // The deleted onion surfaces either as a short reply batch
    // (uniform-participation) or as an uncovered histogram
    // (noise-covered-deaddrops) — both pin it to the tampered round.
    assert!(
        (msg.contains("uniform-participation") || msg.contains("noise-covered-deaddrops"))
            && msg.contains("round 0"),
        "unexpected violation: {msg}"
    );
}

#[test]
fn tampered_dialing_round_never_trips_forward_only() {
    // Tampering aimed squarely at a dialing round must degrade it —
    // the exact no-op-write accounting catches the dropped requests —
    // without ever conjuring a backward pass, and must leave the
    // surrounding conversation rounds untouched.
    use parking_lot::Mutex;
    use std::sync::Arc;
    use vuvuzela_adversary::taps::{DropFraction, RoundWindow};
    use vuvuzela_net::Tap;

    let mut scenario = Scenario::new("dial_tamper", 77);
    scenario.steps.push(Step::Join(6));
    scenario.steps.push(Step::Run(vec![
        RoundPlan::Conversation,
        RoundPlan::Dialing,
        RoundPlan::Conversation,
    ]));
    let mut sim = vuvuzela_sim::Simulator::new(scenario);
    let tap: Arc<Mutex<dyn Tap>> = Arc::new(Mutex::new(DropFraction {
        numerator: 1,
        denominator: 2,
        window: RoundWindow::only(1), // round 1 is the dialing round
    }));
    sim.chain_mut().chain_mut().link_mut(0).attach_tap(tap);
    let (report, violations) = sim.run_collecting();
    assert_eq!(report.schedules_aborted, 0, "tampering must not wedge");
    assert!(
        !violations.is_empty(),
        "dropping half a dialing round must be caught"
    );
    for v in &violations {
        assert_ne!(
            v.invariant, "dialing-forward-only",
            "tampering conjured a backward pass: {v}"
        );
        assert_eq!(
            v.round,
            Some(1),
            "violation leaked past the tampered round: {v}"
        );
    }
}

#[test]
fn soak_cases_match_their_annotations() {
    // Spot-check the pinned survive/trip table across its corner
    // cases: the honest baseline, a per-round strategy, the
    // dialing-round replay (round 12 lands on a dialing round in
    // dial_storm), and the small-population delay that only replies
    // catch. `sim_soak` grades the full crossed matrix in CI.
    use vuvuzela_sim::soak::soak_case;
    use vuvuzela_sim::{run_soak_case, AdversaryStrategy};

    let matrix = bundled_matrix(Scale::Smoke);
    let pick = |name: &str| {
        matrix
            .iter()
            .find(|s| s.name == name)
            .expect("bundled scenario")
            .clone()
    };
    for (base, strategy) in [
        ("steady_state", AdversaryStrategy::None),
        ("steady_state", AdversaryStrategy::Drop),
        ("dial_storm", AdversaryStrategy::Replay),
        ("redial_after_miss", AdversaryStrategy::Delay),
    ] {
        let case = soak_case(pick(base), strategy);
        let outcome = run_soak_case(&case);
        assert!(
            outcome.passed(),
            "{}: undeclared trips {:?}, un-tripped declarations {:?}",
            outcome.name,
            outcome.unexpected,
            outcome.missing
        );
    }
}

#[test]
fn soak_runs_are_deterministic_under_tampering() {
    // Tampering (including violation lines) must not break the
    // byte-identical transcript contract.
    use vuvuzela_sim::soak::soak_case;
    use vuvuzela_sim::{run_soak_case, AdversaryStrategy};

    let base = bundled_matrix(Scale::Smoke)
        .into_iter()
        .find(|s| s.name == "churn_rejoin")
        .expect("bundled scenario");
    let case = soak_case(base, AdversaryStrategy::Inject);
    let a = run_soak_case(&case);
    let b = run_soak_case(&case);
    assert_eq!(
        a.report.transcript.render(),
        b.report.transcript.render(),
        "tampered transcript is timing-dependent"
    );
    assert_eq!(a.report.hash, b.report.hash);
}

#[test]
fn population_step_is_deterministic_and_invariant_checked() {
    // A struct-of-arrays cohort provides cover alongside individual
    // clients: same determinism contract, invariants hold with the
    // cohort folded into every round's participant totals.
    let mut s = Scenario::new("population_cover", 0x0707);
    s.steps.push(Step::Join(8));
    s.steps.push(Step::Population(24));
    s.steps.push(Step::Dial {
        caller: 0,
        callee: 1,
    });
    s.steps.push(Step::Run(vec![RoundPlan::Dialing]));
    s.steps.push(Step::AcceptAll);
    s.steps.push(Step::Queue {
        from: 0,
        to: 1,
        body: b"through the cover crowd".to_vec(),
    });
    s.steps.push(Step::Population(8)); // the cohort grows mid-scenario
    s.steps.push(Step::Run(vec![
        RoundPlan::Conversation,
        RoundPlan::Conversation,
        RoundPlan::Dialing,
    ]));
    let a = run_scenario(&s).expect("population scenario passes invariants");
    let b = run_scenario(&s).expect("second run");
    assert_eq!(
        a.transcript.render(),
        b.transcript.render(),
        "population rounds must stay byte-deterministic"
    );
    assert_eq!(a.hash, b.hash);
    assert_eq!(a.delivered, 1, "the individual pair's message arrives");
    let lines = a.transcript.lines();
    assert!(
        lines.iter().any(|l| l == "event population clients 0..24"),
        "population join transcribed"
    );
    assert!(
        lines.iter().any(|l| l == "event population clients 24..32"),
        "population growth transcribed"
    );
    // 32 cohort + 8 individual clients in the post-growth rounds.
    assert!(
        lines
            .iter()
            .any(|l| l.starts_with("round") && l.contains("conversation participants 40")),
        "conversation totals include the cohort"
    );
    assert!(
        lines
            .iter()
            .any(|l| l.starts_with("round") && l.contains("dialing participants 40")),
        "dialing totals include the cohort"
    );
}

#[test]
fn population_cohort_converses_internally() {
    // Cohort-internal conversations ride the same rounds as the
    // individual clients'; deliveries are queried through the cohort.
    use vuvuzela_sim::Simulator;

    let mut sim = Simulator::new(Scenario::new("population_talk", 0x9090));
    sim.step(Step::Join(6)).expect("join");
    sim.step(Step::Population(16)).expect("population");
    let cohort = sim.cohort_mut().expect("population created a cohort");
    let pk2 = cohort.public_key(2);
    let pk9 = cohort.public_key(9);
    cohort.pair(2, 9).expect("pair");
    cohort
        .queue_message(2, &pk9, b"cohort to cohort")
        .expect("queue");
    cohort
        .queue_message(9, &pk2, b"cohort right back")
        .expect("queue");
    sim.step(Step::Dial {
        caller: 0,
        callee: 1,
    })
    .expect("dial");
    sim.step(Step::Run(vec![RoundPlan::Dialing])).expect("run");
    sim.step(Step::AcceptAll).expect("accept");
    sim.step(Step::Queue {
        from: 0,
        to: 1,
        body: b"individual pair".to_vec(),
    })
    .expect("queue");
    sim.step(Step::Run(vec![
        RoundPlan::Conversation,
        RoundPlan::Conversation,
    ]))
    .expect("run");

    let cohort = sim.cohort().expect("cohort persists");
    assert_eq!(cohort.len(), 16);
    assert_eq!(cohort.mutual_pairs(), 1);
    assert_eq!(
        cohort.delivered_from(9, &pk2),
        vec![b"cohort to cohort".to_vec()]
    );
    assert_eq!(
        cohort.delivered_from(2, &pk9),
        vec![b"cohort right back".to_vec()]
    );
    let pk0 = sim.client(0).public_key();
    assert_eq!(
        sim.client(1).delivered_from(&pk0),
        vec![b"individual pair".to_vec()]
    );
}
