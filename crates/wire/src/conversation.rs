//! Conversation-protocol wire objects (paper §4, Algorithms 1 and 2).
//!
//! An [`ExchangeRequest`] is what the *last* server sees after all onion
//! layers are peeled: a dead-drop ID plus a sealed, fixed-size message.
//! [`ConversationKeys`] holds the end-to-end secrets a pair of users
//! derive from Diffie-Hellman: the per-round dead drop seed and the
//! message-sealing key (Algorithm 1 steps 1a/3).

use crate::deaddrop::DeadDropId;
use crate::{
    expect_len, WireError, DEAD_DROP_ID_LEN, EXCHANGE_REQUEST_LEN, MESSAGE_LEN, SEALED_MESSAGE_LEN,
};
use rand::{CryptoRng, RngCore};
use vuvuzela_crypto::aead;
use vuvuzela_crypto::hkdf::hkdf;
use vuvuzela_crypto::x25519::{Keypair, PublicKey, SecretKey};

/// A dead-drop exchange request: deposit `sealed_message` in `drop` and
/// retrieve whatever the partner deposited.
///
/// All requests have exactly this size and shape, whether they come from a
/// user in a conversation, an idle user (fake request), or a server's
/// cover traffic — indistinguishability is the point.
#[derive(Clone, PartialEq, Eq)]
pub struct ExchangeRequest {
    /// Where to perform the exchange.
    pub drop: DeadDropId,
    /// The sealed 256-byte message to deposit.
    pub sealed_message: Vec<u8>,
}

impl core::fmt::Debug for ExchangeRequest {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "ExchangeRequest({:?}, [{}B])",
            self.drop,
            self.sealed_message.len()
        )
    }
}

impl ExchangeRequest {
    /// Serialises to the fixed [`EXCHANGE_REQUEST_LEN`] wire form.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        debug_assert_eq!(self.sealed_message.len(), SEALED_MESSAGE_LEN);
        let mut out = Vec::with_capacity(EXCHANGE_REQUEST_LEN);
        out.extend_from_slice(&self.drop.0);
        out.extend_from_slice(&self.sealed_message);
        out
    }

    /// Serialises into the first [`EXCHANGE_REQUEST_LEN`] bytes of `out`
    /// without allocating (the flat round buffers write payloads straight
    /// into their slots).
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than [`EXCHANGE_REQUEST_LEN`].
    pub fn encode_into(&self, out: &mut [u8]) {
        debug_assert_eq!(self.sealed_message.len(), SEALED_MESSAGE_LEN);
        out[..DEAD_DROP_ID_LEN].copy_from_slice(&self.drop.0);
        out[DEAD_DROP_ID_LEN..EXCHANGE_REQUEST_LEN].copy_from_slice(&self.sealed_message);
    }

    /// Parses the fixed wire form.
    ///
    /// # Errors
    ///
    /// [`WireError::BadLength`] for any length other than
    /// [`EXCHANGE_REQUEST_LEN`].
    pub fn decode(buf: &[u8]) -> Result<ExchangeRequest, WireError> {
        expect_len(buf, EXCHANGE_REQUEST_LEN)?;
        let mut id = [0u8; DEAD_DROP_ID_LEN];
        id.copy_from_slice(&buf[..DEAD_DROP_ID_LEN]);
        Ok(ExchangeRequest {
            drop: DeadDropId(id),
            sealed_message: buf[DEAD_DROP_ID_LEN..].to_vec(),
        })
    }

    /// Builds a noise request: random drop, random bytes in place of a
    /// sealed message (Algorithm 2 step 2). Indistinguishable from a real
    /// request because AEAD ciphertexts are pseudorandom.
    pub fn noise<R: RngCore + CryptoRng>(rng: &mut R) -> ExchangeRequest {
        let mut sealed = vec![0u8; SEALED_MESSAGE_LEN];
        rng.fill_bytes(&mut sealed);
        ExchangeRequest {
            drop: DeadDropId::random(rng),
            sealed_message: sealed,
        }
    }

    /// Writes an encoded noise request straight into `out` without
    /// allocating. Draws from `rng` in exactly the order [`Self::noise`]
    /// does (sealed message first, then drop), so the bytes match
    /// `Self::noise(rng).encode_into(out)` for equal RNG states. When
    /// `shared_drop` is given the drawn drop is discarded and replaced —
    /// the paired-noise case, mirroring `noise()` + a `drop` overwrite.
    pub fn noise_into<R: RngCore + CryptoRng>(
        rng: &mut R,
        shared_drop: Option<&DeadDropId>,
        out: &mut [u8],
    ) {
        rng.fill_bytes(&mut out[DEAD_DROP_ID_LEN..EXCHANGE_REQUEST_LEN]);
        let drawn = DeadDropId::random(rng);
        let drop = shared_drop.unwrap_or(&drawn);
        out[..DEAD_DROP_ID_LEN].copy_from_slice(&drop.0);
    }
}

/// The result of an exchange: the fixed-size sealed message that was (or
/// appears to have been) waiting in the drop.
#[derive(Clone, PartialEq, Eq)]
pub struct ExchangeResponse {
    /// Sealed message bytes ([`SEALED_MESSAGE_LEN`]).
    pub sealed_message: Vec<u8>,
}

impl core::fmt::Debug for ExchangeResponse {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "ExchangeResponse([{}B])", self.sealed_message.len())
    }
}

impl ExchangeResponse {
    /// Serialises to the fixed wire form.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        debug_assert_eq!(self.sealed_message.len(), SEALED_MESSAGE_LEN);
        self.sealed_message.clone()
    }

    /// Parses the fixed wire form.
    ///
    /// # Errors
    ///
    /// [`WireError::BadLength`] for any other length.
    pub fn decode(buf: &[u8]) -> Result<ExchangeResponse, WireError> {
        expect_len(buf, SEALED_MESSAGE_LEN)?;
        Ok(ExchangeResponse {
            sealed_message: buf.to_vec(),
        })
    }

    /// The response the last server returns for a drop that received only
    /// one access: random bytes, indistinguishable from a real sealed
    /// message ("the last Vuvuzela server returns an empty message when it
    /// receives only one exchange for a dead drop", §4.1).
    pub fn empty<R: RngCore + CryptoRng>(rng: &mut R) -> ExchangeResponse {
        let mut sealed = vec![0u8; SEALED_MESSAGE_LEN];
        rng.fill_bytes(&mut sealed);
        ExchangeResponse {
            sealed_message: sealed,
        }
    }
}

/// Which of the two conversation roles this endpoint plays; determines
/// nonce separation so the two directions of one round never share a
/// (key, nonce) pair. The role is derived from public-key order, so both
/// sides agree without communication.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// The endpoint whose public key sorts lower.
    Lower,
    /// The endpoint whose public key sorts higher.
    Higher,
}

impl Role {
    fn nonce_byte(self) -> u8 {
        match self {
            Role::Lower => 0x10,
            Role::Higher => 0x11,
        }
    }

    fn other(self) -> Role {
        match self {
            Role::Lower => Role::Higher,
            Role::Higher => Role::Lower,
        }
    }
}

/// End-to-end secrets shared by a conversation pair.
///
/// Derived from `DH(my_sk, their_pk)` (Algorithm 1 step 1a): a message
/// key for sealing payloads and a drop seed for the per-round dead drop.
#[derive(Clone)]
pub struct ConversationKeys {
    message_key: [u8; 32],
    drop_seed: [u8; 32],
    role: Role,
}

impl core::fmt::Debug for ConversationKeys {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "ConversationKeys(role: {:?}, ..)", self.role)
    }
}

impl ConversationKeys {
    /// Derives the conversation secrets between `my` keypair and a peer.
    ///
    /// Both endpoints derive identical keys (DH commutativity) and
    /// complementary [`Role`]s.
    #[must_use]
    pub fn derive(my_secret: &SecretKey, my_public: &PublicKey, their_public: &PublicKey) -> Self {
        let shared = my_secret.diffie_hellman(their_public);
        // Salt orders the two public keys canonically so both sides agree.
        let (lo, hi) = if my_public <= their_public {
            (my_public, their_public)
        } else {
            (their_public, my_public)
        };
        let mut salt = [0u8; 64];
        salt[..32].copy_from_slice(lo.as_bytes());
        salt[32..].copy_from_slice(hi.as_bytes());
        let message_key = hkdf(&salt, &shared.0, b"vuvuzela/conv/msg/v1");
        let drop_seed = hkdf(&salt, &shared.0, b"vuvuzela/conv/drop/v1");
        let role = if my_public <= their_public {
            Role::Lower
        } else {
            Role::Higher
        };
        ConversationKeys {
            message_key,
            drop_seed,
            role,
        }
    }

    /// Builds the keys for a *fake* exchange (Algorithm 1 step 1b): the
    /// client invents a random partner so its request is indistinguishable
    /// from a real one.
    pub fn fake<R: RngCore + CryptoRng>(
        rng: &mut R,
        my_secret: &SecretKey,
        my_public: &PublicKey,
    ) -> Self {
        let rand_peer = Keypair::generate(rng);
        Self::derive(my_secret, my_public, &rand_peer.public)
    }

    /// The dead drop this conversation uses in `round`.
    #[must_use]
    pub fn drop_id(&self, round: u64) -> DeadDropId {
        DeadDropId::for_round(&self.drop_seed, round)
    }

    /// Seals a 240-byte padded payload for this round. Input shorter than
    /// [`MESSAGE_LEN`] is zero-padded; the framing in [`crate::message`]
    /// carries the true length.
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds [`MESSAGE_LEN`].
    #[must_use]
    pub fn seal_message(&self, round: u64, payload: &[u8]) -> Vec<u8> {
        assert!(
            payload.len() <= MESSAGE_LEN,
            "payload {} exceeds MESSAGE_LEN {MESSAGE_LEN}",
            payload.len()
        );
        let mut padded = vec![0u8; MESSAGE_LEN];
        padded[..payload.len()].copy_from_slice(payload);
        let nonce = self.nonce(round, self.role);
        aead::seal(&self.message_key, &nonce, &[], &padded)
    }

    /// Opens the partner's sealed message from this round, returning the
    /// padded 240-byte payload.
    ///
    /// # Errors
    ///
    /// [`WireError::Crypto`] when the bytes are not a message from the
    /// partner (e.g. the random filler returned for an un-reciprocated
    /// exchange — this is how a client learns its partner was absent).
    pub fn open_message(&self, round: u64, sealed: &[u8]) -> Result<Vec<u8>, WireError> {
        expect_len(sealed, SEALED_MESSAGE_LEN)?;
        let nonce = self.nonce(round, self.role.other());
        Ok(aead::open(&self.message_key, &nonce, &[], sealed)?)
    }

    fn nonce(&self, round: u64, role: Role) -> [u8; aead::NONCE_LEN] {
        let mut nonce = [0u8; aead::NONCE_LEN];
        nonce[0] = role.nonce_byte();
        nonce[4..12].copy_from_slice(&round.to_le_bytes());
        nonce
    }

    /// This endpoint's role (exposed for tests and diagnostics).
    #[must_use]
    pub fn role(&self) -> Role {
        self.role
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pair(seed: u64) -> (Keypair, Keypair) {
        let mut rng = StdRng::seed_from_u64(seed);
        (Keypair::generate(&mut rng), Keypair::generate(&mut rng))
    }

    #[test]
    fn both_sides_derive_same_drop() {
        let (alice, bob) = pair(1);
        let ka = ConversationKeys::derive(&alice.secret, &alice.public, &bob.public);
        let kb = ConversationKeys::derive(&bob.secret, &bob.public, &alice.public);
        for round in [0u64, 1, 99, u64::MAX] {
            assert_eq!(ka.drop_id(round), kb.drop_id(round));
        }
        assert_ne!(ka.drop_id(1), ka.drop_id(2));
        assert_ne!(ka.role(), kb.role());
    }

    #[test]
    fn seal_open_roundtrip_both_directions() {
        let (alice, bob) = pair(2);
        let ka = ConversationKeys::derive(&alice.secret, &alice.public, &bob.public);
        let kb = ConversationKeys::derive(&bob.secret, &bob.public, &alice.public);

        let sealed = ka.seal_message(7, b"hi bob");
        assert_eq!(sealed.len(), SEALED_MESSAGE_LEN);
        let opened = kb.open_message(7, &sealed).expect("bob opens");
        assert_eq!(&opened[..6], b"hi bob");
        assert!(opened[6..].iter().all(|&b| b == 0), "padding is zeros");

        let sealed_back = kb.seal_message(7, b"hi alice");
        let opened_back = ka.open_message(7, &sealed_back).expect("alice opens");
        assert_eq!(&opened_back[..8], b"hi alice");
    }

    #[test]
    fn same_round_both_directions_use_distinct_nonces() {
        // If both sides sealed with the same nonce, two equal plaintexts
        // would produce related ciphertexts. Verify ciphertexts differ and
        // each side cannot open its *own* message (direction separation).
        let (alice, bob) = pair(3);
        let ka = ConversationKeys::derive(&alice.secret, &alice.public, &bob.public);
        let kb = ConversationKeys::derive(&bob.secret, &bob.public, &alice.public);
        let a_sealed = ka.seal_message(5, b"same");
        let b_sealed = kb.seal_message(5, b"same");
        assert_ne!(a_sealed, b_sealed);
        assert!(
            ka.open_message(5, &a_sealed).is_err(),
            "cannot open own message"
        );
    }

    #[test]
    fn wrong_round_fails_to_open() {
        let (alice, bob) = pair(4);
        let ka = ConversationKeys::derive(&alice.secret, &alice.public, &bob.public);
        let kb = ConversationKeys::derive(&bob.secret, &bob.public, &alice.public);
        let sealed = ka.seal_message(1, b"x");
        assert!(kb.open_message(2, &sealed).is_err());
    }

    #[test]
    fn random_filler_fails_to_open() {
        // The "empty message" a client receives when its partner was
        // absent must decrypt to an error, not garbage text.
        let (alice, bob) = pair(5);
        let kb = ConversationKeys::derive(&bob.secret, &bob.public, &alice.public);
        let mut rng = StdRng::seed_from_u64(6);
        let filler = ExchangeResponse::empty(&mut rng);
        assert!(kb.open_message(3, &filler.sealed_message).is_err());
    }

    #[test]
    fn fake_keys_are_fresh_every_time() {
        let (alice, _) = pair(7);
        let mut rng = StdRng::seed_from_u64(8);
        let f1 = ConversationKeys::fake(&mut rng, &alice.secret, &alice.public);
        let f2 = ConversationKeys::fake(&mut rng, &alice.secret, &alice.public);
        assert_ne!(f1.drop_id(0), f2.drop_id(0));
    }

    #[test]
    fn request_encode_decode_roundtrip() {
        let mut rng = StdRng::seed_from_u64(9);
        let req = ExchangeRequest::noise(&mut rng);
        let encoded = req.encode();
        assert_eq!(encoded.len(), EXCHANGE_REQUEST_LEN);
        let decoded = ExchangeRequest::decode(&encoded).expect("decode");
        assert_eq!(decoded, req);
    }

    #[test]
    fn request_decode_rejects_wrong_length() {
        assert!(matches!(
            ExchangeRequest::decode(&[0u8; 10]),
            Err(WireError::BadLength { .. })
        ));
    }

    #[test]
    fn response_encode_decode_roundtrip() {
        let mut rng = StdRng::seed_from_u64(10);
        let resp = ExchangeResponse::empty(&mut rng);
        let decoded = ExchangeResponse::decode(&resp.encode()).expect("decode");
        assert_eq!(decoded, resp);
        assert!(ExchangeResponse::decode(&[0u8; 3]).is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds MESSAGE_LEN")]
    fn oversized_payload_panics() {
        let (alice, bob) = pair(11);
        let ka = ConversationKeys::derive(&alice.secret, &alice.public, &bob.public);
        let _ = ka.seal_message(0, &[0u8; MESSAGE_LEN + 1]);
    }
}
