//! Dead-drop identifiers (paper §3.1, Algorithm 1 step 1a).
//!
//! Conversation dead drops are 128-bit IDs derived pseudo-randomly per
//! round from the pair's shared secret, so an adversary can neither
//! predict them nor correlate them across rounds. Invitation dead drops
//! (dialing) are small indices derived from the *recipient's public key*,
//! which is exactly why they need per-drop noise (§5.3).

use crate::DEAD_DROP_ID_LEN;
use rand::{CryptoRng, RngCore};
use vuvuzela_crypto::hkdf::hmac_sha256;
use vuvuzela_crypto::sha256::sha256;
use vuvuzela_crypto::x25519::PublicKey;

/// A 128-bit conversation dead-drop identifier.
///
/// "Dead drops are named by 128-bit IDs, so honest clients should never
/// collide in the dead drops they choose." (§3.1)
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeadDropId(pub [u8; DEAD_DROP_ID_LEN]);

impl core::fmt::Debug for DeadDropId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "DeadDropId({:02x}{:02x}{:02x}{:02x}..)",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

impl DeadDropId {
    /// Derives the dead drop for a given round from a 32-byte drop seed
    /// (itself derived from the conversation's shared secret):
    /// `b = H(s, r)` of Algorithm 1, realised as HMAC-SHA256 truncated to
    /// 128 bits.
    #[must_use]
    pub fn for_round(drop_seed: &[u8; 32], round: u64) -> DeadDropId {
        let mac = hmac_sha256(drop_seed, &round.to_le_bytes());
        let mut id = [0u8; DEAD_DROP_ID_LEN];
        id.copy_from_slice(&mac[..DEAD_DROP_ID_LEN]);
        DeadDropId(id)
    }

    /// Draws a uniformly random dead drop — used for fake client requests
    /// (Algorithm 1 step 1b) and server noise (Algorithm 2 step 2).
    pub fn random<R: RngCore + CryptoRng>(rng: &mut R) -> DeadDropId {
        let mut id = [0u8; DEAD_DROP_ID_LEN];
        rng.fill_bytes(&mut id);
        DeadDropId(id)
    }
}

/// The index of an invitation dead drop within a dialing round that uses
/// `m` drops (paper §5.1: invitations for public key `pk` go to drop
/// `H(pk) mod m`).
///
/// Index `0` is reserved as the **no-op drop**: clients that are not
/// dialing anyone this round write there (§5.2), and no recipient ever
/// reads it. Real drops are `1..=m`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InvitationDropIndex(pub u32);

impl InvitationDropIndex {
    /// The distinguished no-op drop.
    pub const NOOP: InvitationDropIndex = InvitationDropIndex(0);

    /// The invitation drop that receives invitations addressed to `pk`
    /// when the round uses `num_drops` real drops.
    ///
    /// # Panics
    ///
    /// Panics if `num_drops` is zero; rounds always have at least one
    /// real drop.
    #[must_use]
    pub fn for_recipient(pk: &PublicKey, num_drops: u32) -> InvitationDropIndex {
        assert!(num_drops > 0, "a dialing round needs at least one drop");
        let digest = sha256(pk.as_bytes());
        let mut word = [0u8; 8];
        word.copy_from_slice(&digest[..8]);
        let h = u64::from_le_bytes(word);
        // Real drops are 1..=num_drops; 0 is the no-op drop.
        InvitationDropIndex(1 + (h % u64::from(num_drops)) as u32)
    }

    /// Whether this is the no-op drop.
    #[must_use]
    pub fn is_noop(self) -> bool {
        self.0 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vuvuzela_crypto::x25519::Keypair;

    #[test]
    fn drop_ids_change_every_round() {
        let seed = [7u8; 32];
        let a = DeadDropId::for_round(&seed, 1);
        let b = DeadDropId::for_round(&seed, 2);
        assert_ne!(a, b);
        // ... but are deterministic for the same round.
        assert_eq!(a, DeadDropId::for_round(&seed, 1));
    }

    #[test]
    fn different_pairs_never_collide_in_practice() {
        let a = DeadDropId::for_round(&[1u8; 32], 9);
        let b = DeadDropId::for_round(&[2u8; 32], 9);
        assert_ne!(a, b);
    }

    #[test]
    fn random_drops_are_distinct() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = DeadDropId::random(&mut rng);
        let b = DeadDropId::random(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn invitation_drop_is_stable_and_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for m in [1u32, 2, 7, 64] {
            for _ in 0..20 {
                let kp = Keypair::generate(&mut rng);
                let idx = InvitationDropIndex::for_recipient(&kp.public, m);
                assert!(idx.0 >= 1 && idx.0 <= m, "index {} for m={m}", idx.0);
                assert!(!idx.is_noop());
                assert_eq!(idx, InvitationDropIndex::for_recipient(&kp.public, m));
            }
        }
    }

    #[test]
    fn invitation_drops_spread_across_buckets() {
        // With m=4 and 200 keys, every bucket should be hit.
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let kp = Keypair::generate(&mut rng);
            seen.insert(InvitationDropIndex::for_recipient(&kp.public, 4).0);
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn noop_drop_is_reserved() {
        assert!(InvitationDropIndex::NOOP.is_noop());
        assert_eq!(InvitationDropIndex::NOOP.0, 0);
    }

    #[test]
    #[should_panic(expected = "at least one drop")]
    fn zero_drops_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let kp = Keypair::generate(&mut rng);
        let _ = InvitationDropIndex::for_recipient(&kp.public, 0);
    }
}
