//! Dialing-protocol wire objects (paper §5).
//!
//! A [`DialRequest`] is what the last server sees after peeling: the index
//! of an invitation dead drop plus a sealed 80-byte invitation. The
//! invitation plaintext is the caller's long-term public key, sealed to
//! the recipient's long-term public key with [`vuvuzela_crypto::sealedbox`].

use crate::deaddrop::InvitationDropIndex;
use crate::{expect_len, WireError, DIAL_REQUEST_LEN, INVITATION_LEN, SEALED_INVITATION_LEN};
use rand::{CryptoRng, RngCore};
use vuvuzela_crypto::sealedbox;
use vuvuzela_crypto::x25519::{PublicKey, SecretKey};

/// A sealed invitation: 80 opaque bytes only the intended recipient can
/// open (and only by trial decryption).
#[derive(Clone, PartialEq, Eq)]
pub struct SealedInvitation(pub Vec<u8>);

impl core::fmt::Debug for SealedInvitation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "SealedInvitation([{}B])", self.0.len())
    }
}

impl SealedInvitation {
    /// Seals an invitation from `caller_pk` to `recipient_pk`.
    pub fn seal<R: RngCore + CryptoRng>(
        rng: &mut R,
        caller_pk: &PublicKey,
        recipient_pk: &PublicKey,
    ) -> SealedInvitation {
        SealedInvitation(sealedbox::seal(rng, recipient_pk, caller_pk.as_bytes()))
    }

    /// Builds a noise invitation: random bytes, indistinguishable from a
    /// sealed invitation (Algorithm 2 step 2 applied to dialing, §5.3).
    pub fn noise<R: RngCore + CryptoRng>(rng: &mut R) -> SealedInvitation {
        let mut bytes = vec![0u8; SEALED_INVITATION_LEN];
        rng.fill_bytes(&mut bytes);
        SealedInvitation(bytes)
    }

    /// Attempts to open this invitation as `recipient`; returns the
    /// caller's public key on success.
    ///
    /// Failure is the *normal* case while scanning a drop — most
    /// invitations in a shared drop belong to other recipients or are
    /// noise.
    #[must_use]
    pub fn try_open(
        &self,
        recipient_secret: &SecretKey,
        recipient_public: &PublicKey,
    ) -> Option<PublicKey> {
        let plaintext = sealedbox::open(recipient_secret, recipient_public, &self.0).ok()?;
        if plaintext.len() != INVITATION_LEN {
            return None;
        }
        let mut pk = [0u8; 32];
        pk.copy_from_slice(&plaintext);
        Some(PublicKey::from_bytes(pk))
    }
}

/// A dialing request: deposit `invitation` in invitation drop `drop`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DialRequest {
    /// Which invitation dead drop to write to ([`InvitationDropIndex::NOOP`]
    /// for clients not dialing this round).
    pub drop: InvitationDropIndex,
    /// The sealed invitation.
    pub invitation: SealedInvitation,
}

impl DialRequest {
    /// Serialises to the fixed [`DIAL_REQUEST_LEN`] wire form.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        debug_assert_eq!(self.invitation.0.len(), SEALED_INVITATION_LEN);
        let mut out = Vec::with_capacity(DIAL_REQUEST_LEN);
        out.extend_from_slice(&self.drop.0.to_le_bytes());
        out.extend_from_slice(&self.invitation.0);
        out
    }

    /// Serialises into the first [`DIAL_REQUEST_LEN`] bytes of `out`
    /// without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than [`DIAL_REQUEST_LEN`].
    pub fn encode_into(&self, out: &mut [u8]) {
        debug_assert_eq!(self.invitation.0.len(), SEALED_INVITATION_LEN);
        out[..4].copy_from_slice(&self.drop.0.to_le_bytes());
        out[4..DIAL_REQUEST_LEN].copy_from_slice(&self.invitation.0);
    }

    /// Writes an encoded noise dial request for `drop` straight into
    /// `out` without allocating; RNG-stream-compatible with constructing
    /// a [`SealedInvitation::noise`] request and encoding it.
    pub fn noise_into<R: RngCore + CryptoRng>(
        rng: &mut R,
        drop: InvitationDropIndex,
        out: &mut [u8],
    ) {
        out[..4].copy_from_slice(&drop.0.to_le_bytes());
        rng.fill_bytes(&mut out[4..DIAL_REQUEST_LEN]);
    }

    /// Parses the fixed wire form.
    ///
    /// # Errors
    ///
    /// [`WireError::BadLength`] for any other length.
    pub fn decode(buf: &[u8]) -> Result<DialRequest, WireError> {
        expect_len(buf, DIAL_REQUEST_LEN)?;
        let drop = InvitationDropIndex(u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]));
        Ok(DialRequest {
            drop,
            invitation: SealedInvitation(buf[4..].to_vec()),
        })
    }

    /// A no-op dialing request (client not dialing this round, §5.2):
    /// random bytes to the no-op drop.
    pub fn noop<R: RngCore + CryptoRng>(rng: &mut R) -> DialRequest {
        DialRequest {
            drop: InvitationDropIndex::NOOP,
            invitation: SealedInvitation::noise(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vuvuzela_crypto::x25519::Keypair;

    #[test]
    fn invitation_seal_open() {
        let mut rng = StdRng::seed_from_u64(1);
        let caller = Keypair::generate(&mut rng);
        let callee = Keypair::generate(&mut rng);
        let inv = SealedInvitation::seal(&mut rng, &caller.public, &callee.public);
        assert_eq!(inv.0.len(), SEALED_INVITATION_LEN);
        let opened = inv
            .try_open(&callee.secret, &callee.public)
            .expect("recipient opens");
        assert_eq!(opened, caller.public);
    }

    #[test]
    fn non_recipient_cannot_open() {
        let mut rng = StdRng::seed_from_u64(2);
        let caller = Keypair::generate(&mut rng);
        let callee = Keypair::generate(&mut rng);
        let eve = Keypair::generate(&mut rng);
        let inv = SealedInvitation::seal(&mut rng, &caller.public, &callee.public);
        assert!(inv.try_open(&eve.secret, &eve.public).is_none());
    }

    #[test]
    fn noise_invitations_do_not_open() {
        let mut rng = StdRng::seed_from_u64(3);
        let callee = Keypair::generate(&mut rng);
        for _ in 0..20 {
            let noise = SealedInvitation::noise(&mut rng);
            assert!(noise.try_open(&callee.secret, &callee.public).is_none());
        }
    }

    #[test]
    fn dial_request_roundtrip() {
        let mut rng = StdRng::seed_from_u64(4);
        let caller = Keypair::generate(&mut rng);
        let callee = Keypair::generate(&mut rng);
        let req = DialRequest {
            drop: InvitationDropIndex(5),
            invitation: SealedInvitation::seal(&mut rng, &caller.public, &callee.public),
        };
        let buf = req.encode();
        assert_eq!(buf.len(), DIAL_REQUEST_LEN);
        assert_eq!(DialRequest::decode(&buf).expect("decode"), req);
    }

    #[test]
    fn noop_request_targets_noop_drop() {
        let mut rng = StdRng::seed_from_u64(5);
        let req = DialRequest::noop(&mut rng);
        assert!(req.drop.is_noop());
    }

    #[test]
    fn decode_rejects_wrong_length() {
        assert!(matches!(
            DialRequest::decode(&[0u8; 10]),
            Err(WireError::BadLength { .. })
        ));
    }
}
