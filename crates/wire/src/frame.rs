//! The length-prefixed frame format the TCP transport speaks.
//!
//! Every message on a wire link is one *frame*: a fixed header (magic,
//! version, frame type) followed by the frame body. On a socket, frames
//! travel behind an outer 4-byte little-endian length prefix (written
//! and enforced by the transport's IO layer, which rejects prefixes
//! beyond [`MAX_FRAME_LEN`] *before* reading the body); the codec here
//! is pure bytes-in/bytes-out so it can be property-tested without
//! sockets.
//!
//! Three frame types exist:
//!
//! * [`Hello`] — the connection handshake: each side announces which
//!   [`LinkId`] it believes the connection terminates and a digest of
//!   its deployment config, so mis-wired or mis-configured processes
//!   fail loudly at connect time instead of corrupting a round.
//! * [`BatchFrame`] — one round's batch crossing the link: the flat
//!   arena bytes (`count` slots of `stride` bytes, logical `width`),
//!   tagged with the round number and protocol exactly like the
//!   streaming scheduler's in-process hand-offs, plus an opaque
//!   `trailer` intermediate hops forward untouched (the tail uses it to
//!   ship per-round observables to the entry).
//! * [`Frame::Bye`] — orderly termination: the entry sends it after the
//!   last forward batch, each server relays it, and the tail turns it
//!   around; FIFO ordering guarantees no batch is abandoned behind it.

use crate::linkid::LinkId;
use crate::round::{RoundId, RoundType};

/// Magic bytes opening every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"VUVU";

/// Frame format version this codec speaks.
pub const FRAME_VERSION: u16 = 1;

/// Upper bound on one frame's encoded size. A transport must reject a
/// length prefix above this *before* allocating or reading the body, so
/// a corrupt or hostile peer cannot make a server allocate gigabytes.
/// 64 MiB comfortably holds the paper-scale batches (~1M requests ×
/// ~350-byte onions ship in several rounds, each far below this).
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// The connection handshake body.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hello {
    /// Which deployment link this connection carries.
    pub link: LinkId,
    /// SHA-256 of the canonical deployment config; both ends must match.
    pub config_digest: [u8; 32],
}

/// One round batch crossing a link.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchFrame {
    /// The link this batch crosses.
    pub link: LinkId,
    /// Round the batch belongs to.
    pub round: RoundId,
    /// Which protocol the round runs.
    pub round_type: RoundType,
    /// Real invitation drops (dialing rounds; 0 for conversation).
    pub num_drops: u32,
    /// `true` for the reply direction (towards the clients).
    pub backward: bool,
    /// Slot capacity of the flat arena.
    pub stride: u32,
    /// Logical message width (uniform across slots), `width <= stride`.
    pub width: u32,
    /// Number of slots.
    pub count: u32,
    /// The arena bytes: exactly `count * stride` of them.
    pub payload: Vec<u8>,
    /// Opaque bytes intermediate hops must forward untouched.
    pub trailer: Vec<u8>,
}

/// A decoded frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Connection handshake.
    Hello(Hello),
    /// A round batch.
    Batch(BatchFrame),
    /// Orderly end-of-stream marker.
    Bye,
}

const TYPE_HELLO: u8 = 1;
const TYPE_BATCH: u8 = 2;
const TYPE_BYE: u8 = 3;

/// Why a frame failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The magic bytes were wrong — not a Vuvuzela frame at all.
    BadMagic,
    /// A frame version this codec does not speak.
    UnsupportedVersion(u16),
    /// An unknown frame type byte.
    BadFrameType(u8),
    /// The buffer ended before the frame did.
    Truncated,
    /// Bytes remained after a complete frame.
    TrailingBytes,
    /// A frame (or its declared payload) exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// Declared or actual length.
        len: u64,
    },
    /// An undecodable [`LinkId`] code.
    BadLink(u64),
    /// An undecodable [`RoundType`] byte.
    BadRoundType(u8),
    /// A flag byte that is neither 0 nor 1.
    BadFlag(u8),
    /// Arena geometry is inconsistent (`width > stride`, zero stride
    /// with nonzero count, or `payload.len() != count * stride`).
    BadGeometry,
    /// A batch frame violated a link's per-direction ordering rule:
    /// round ids must strictly increase and nothing follows the
    /// direction's `Bye` (see [`crate::sequence`]).
    OutOfOrder {
        /// The last round id legally observed on the link + direction.
        prev: u64,
        /// The violating round id.
        next: u64,
    },
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::BadMagic => f.write_str("bad frame magic"),
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported frame version {v}"),
            FrameError::BadFrameType(t) => write!(f, "unknown frame type {t}"),
            FrameError::Truncated => f.write_str("truncated frame"),
            FrameError::TrailingBytes => f.write_str("trailing bytes after frame"),
            FrameError::Oversized { len } => {
                write!(
                    f,
                    "frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"
                )
            }
            FrameError::BadLink(code) => write!(f, "undecodable link id {code:#x}"),
            FrameError::BadRoundType(b) => write!(f, "unknown round type {b}"),
            FrameError::BadFlag(b) => write!(f, "flag byte {b} is neither 0 nor 1"),
            FrameError::BadGeometry => f.write_str("inconsistent arena geometry"),
            FrameError::OutOfOrder { prev, next } => {
                write!(
                    f,
                    "round {next} out of order after round {prev} on this link direction"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl Frame {
    /// Encodes the frame body (everything behind the transport's outer
    /// length prefix).
    ///
    /// # Panics
    ///
    /// Panics if a batch frame's geometry is inconsistent
    /// (`payload.len() != count * stride` or `width > stride`) — that is
    /// a sender-side bug, never remote input.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&FRAME_MAGIC);
        out.extend_from_slice(&FRAME_VERSION.to_le_bytes());
        match self {
            Frame::Hello(hello) => {
                out.push(TYPE_HELLO);
                out.extend_from_slice(&hello.link.code().to_le_bytes());
                out.extend_from_slice(&hello.config_digest);
            }
            Frame::Batch(batch) => {
                assert!(
                    batch.width <= batch.stride,
                    "batch width exceeds its stride"
                );
                assert_eq!(
                    batch.payload.len() as u64,
                    u64::from(batch.count) * u64::from(batch.stride),
                    "payload length must be count * stride"
                );
                out.push(TYPE_BATCH);
                out.extend_from_slice(&batch.link.code().to_le_bytes());
                out.extend_from_slice(&batch.round.encode());
                out.extend_from_slice(&batch.round_type.encode());
                out.push(u8::from(batch.backward));
                out.extend_from_slice(&batch.num_drops.to_le_bytes());
                out.extend_from_slice(&batch.stride.to_le_bytes());
                out.extend_from_slice(&batch.width.to_le_bytes());
                out.extend_from_slice(&batch.count.to_le_bytes());
                out.extend_from_slice(&(batch.payload.len() as u32).to_le_bytes());
                out.extend_from_slice(&batch.payload);
                out.extend_from_slice(&(batch.trailer.len() as u32).to_le_bytes());
                out.extend_from_slice(&batch.trailer);
            }
            Frame::Bye => out.push(TYPE_BYE),
        }
        out
    }

    /// Exact size [`Frame::encode`] will produce.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        7 + match self {
            Frame::Hello(_) => 8 + 32,
            Frame::Batch(b) => 8 + 8 + 1 + 1 + 4 * 4 + 4 + b.payload.len() + 4 + b.trailer.len(),
            Frame::Bye => 0,
        }
    }

    /// Decodes one frame from exactly `buf` (trailing bytes are an
    /// error — the outer length prefix already delimits frames).
    ///
    /// # Errors
    ///
    /// Any [`FrameError`]; never panics, whatever the input.
    pub fn decode(buf: &[u8]) -> Result<Frame, FrameError> {
        if buf.len() > MAX_FRAME_LEN {
            return Err(FrameError::Oversized {
                len: buf.len() as u64,
            });
        }
        let mut r = Reader { buf, pos: 0 };
        if r.take(4)? != FRAME_MAGIC {
            return Err(FrameError::BadMagic);
        }
        let version = u16::from_le_bytes(r.take(2)?.try_into().expect("2 bytes"));
        if version != FRAME_VERSION {
            return Err(FrameError::UnsupportedVersion(version));
        }
        let frame = match r.take(1)?[0] {
            TYPE_HELLO => {
                let link = r.link()?;
                let config_digest: [u8; 32] = r.take(32)?.try_into().expect("32 bytes");
                Frame::Hello(Hello {
                    link,
                    config_digest,
                })
            }
            TYPE_BATCH => {
                let link = r.link()?;
                let round = RoundId::decode(r.take(8)?).map_err(|_| FrameError::Truncated)?;
                let round_type_byte = r.take(1)?[0];
                let round_type = RoundType::decode(&[round_type_byte])
                    .map_err(|_| FrameError::BadRoundType(round_type_byte))?;
                let backward = match r.take(1)?[0] {
                    0 => false,
                    1 => true,
                    b => return Err(FrameError::BadFlag(b)),
                };
                let num_drops = r.u32()?;
                let stride = r.u32()?;
                let width = r.u32()?;
                let count = r.u32()?;
                let payload_len = r.u32()? as usize;
                let payload = r.take(payload_len)?.to_vec();
                let trailer_len = r.u32()? as usize;
                let trailer = r.take(trailer_len)?.to_vec();
                if width > stride || payload.len() as u64 != u64::from(count) * u64::from(stride) {
                    return Err(FrameError::BadGeometry);
                }
                Frame::Batch(BatchFrame {
                    link,
                    round,
                    round_type,
                    num_drops,
                    backward,
                    stride,
                    width,
                    count,
                    payload,
                    trailer,
                })
            }
            TYPE_BYE => Frame::Bye,
            t => return Err(FrameError::BadFrameType(t)),
        };
        if r.pos != buf.len() {
            return Err(FrameError::TrailingBytes);
        }
        Ok(frame)
    }
}

/// A bounds-checked byte cursor (decode never indexes raw).
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.pos.checked_add(n).ok_or(FrameError::Truncated)?;
        if end > self.buf.len() {
            return Err(FrameError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn link(&mut self) -> Result<LinkId, FrameError> {
        let code = u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes"));
        LinkId::from_code(code).ok_or(FrameError::BadLink(code))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> BatchFrame {
        BatchFrame {
            link: LinkId::Hop(1),
            round: RoundId(42),
            round_type: RoundType::Dialing,
            num_drops: 3,
            backward: false,
            stride: 4,
            width: 3,
            count: 2,
            payload: vec![1, 2, 3, 0, 4, 5, 6, 0],
            trailer: vec![9, 9],
        }
    }

    #[test]
    fn all_frame_types_roundtrip() {
        let frames = [
            Frame::Hello(Hello {
                link: LinkId::Clients,
                config_digest: [7u8; 32],
            }),
            Frame::Batch(sample_batch()),
            Frame::Bye,
        ];
        for frame in frames {
            let bytes = frame.encode();
            assert_eq!(bytes.len(), frame.encoded_len());
            assert_eq!(Frame::decode(&bytes), Ok(frame));
        }
    }

    #[test]
    fn empty_batch_roundtrips() {
        let frame = Frame::Batch(BatchFrame {
            count: 0,
            payload: Vec::new(),
            trailer: Vec::new(),
            ..sample_batch()
        });
        assert_eq!(Frame::decode(&frame.encode()), Ok(frame));
    }

    #[test]
    fn every_truncation_errors_cleanly() {
        for frame in [
            Frame::Hello(Hello {
                link: LinkId::Hop(0),
                config_digest: [1u8; 32],
            }),
            Frame::Batch(sample_batch()),
            Frame::Bye,
        ] {
            let bytes = frame.encode();
            for cut in 0..bytes.len() {
                assert!(Frame::decode(&bytes[..cut]).is_err(), "cut at {cut}");
            }
        }
    }

    #[test]
    fn corrupt_headers_rejected() {
        let good = Frame::Bye.encode();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(Frame::decode(&bad_magic), Err(FrameError::BadMagic));

        let mut bad_version = good.clone();
        bad_version[4] = 0xFF;
        assert_eq!(
            Frame::decode(&bad_version),
            Err(FrameError::UnsupportedVersion(0x00FF)),
        );

        let mut bad_type = good.clone();
        bad_type[6] = 99;
        assert_eq!(Frame::decode(&bad_type), Err(FrameError::BadFrameType(99)));

        let mut trailing = good;
        trailing.push(0);
        assert_eq!(Frame::decode(&trailing), Err(FrameError::TrailingBytes));
    }

    #[test]
    fn corrupt_batch_fields_rejected() {
        let bytes = Frame::Batch(sample_batch()).encode();

        // link code tag (high bytes of the u64 at offset 7)
        let mut bad_link = bytes.clone();
        bad_link[7 + 7] = 0xEE;
        assert!(matches!(
            Frame::decode(&bad_link),
            Err(FrameError::BadLink(_))
        ));

        // round type byte sits after link(8) + round(8)
        let mut bad_rtype = bytes.clone();
        bad_rtype[7 + 16] = 9;
        assert_eq!(Frame::decode(&bad_rtype), Err(FrameError::BadRoundType(9)));

        let mut bad_flag = bytes.clone();
        bad_flag[7 + 17] = 2;
        assert_eq!(Frame::decode(&bad_flag), Err(FrameError::BadFlag(2)));

        // width > stride
        let mut frame = sample_batch();
        frame.width = frame.stride;
        let mut encoded = Frame::Batch(frame).encode();
        let width_off = 7 + 8 + 8 + 1 + 1 + 4 + 4;
        encoded[width_off] = 200;
        assert_eq!(Frame::decode(&encoded), Err(FrameError::BadGeometry));
    }

    #[test]
    fn payload_count_mismatch_rejected() {
        // Declare one more slot than the payload holds. encode() would
        // panic sender-side on this inconsistency; flip the count byte
        // in otherwise valid bytes to model a corrupting peer.
        let mut bytes = Frame::Batch(sample_batch()).encode();
        let count_off = 7 + 8 + 8 + 1 + 1 + 4 + 4 + 4;
        bytes[count_off] = 3;
        assert_eq!(Frame::decode(&bytes), Err(FrameError::BadGeometry));
    }

    #[test]
    #[should_panic(expected = "payload length must be count * stride")]
    fn encoding_inconsistent_batch_panics() {
        let mut frame = sample_batch();
        frame.payload.pop();
        let _ = Frame::Batch(frame).encode();
    }

    #[test]
    fn oversized_buffer_rejected_without_reading() {
        // Construct the error path directly (a real 64 MiB allocation is
        // wasteful in unit tests; the IO layer tests cover the prefix
        // rejection).
        let r = Frame::decode(&[]);
        assert_eq!(r, Err(FrameError::Truncated));
        assert!(FrameError::Oversized { len: 1 << 40 }
            .to_string()
            .contains("exceeds"));
    }
}
