//! Fixed-size wire formats and protocol constants for Vuvuzela.
//!
//! Vuvuzela's privacy argument starts from the requirement that *"message
//! sizes, and the rate at which messages are sent, are independent of user
//! activity"* (paper §3.2). This crate is where that requirement is made
//! concrete: every protocol object has exactly one size, all encoders pad,
//! and all decoders reject anything with a different length.
//!
//! * [`deaddrop`] — 128-bit dead-drop identifiers and their pseudo-random
//!   per-round derivation (Algorithm 1 step 1a).
//! * [`conversation`] — the exchange request/response formats and the
//!   end-to-end message sealing between two conversation partners.
//! * [`message`] — the client-level framing inside a 240-byte payload
//!   (text, sequence numbers for retransmission, acks).
//! * [`dialing`] — invitations and dialing requests (§5).
//! * [`round`] — round identifiers tagging every in-flight batch, so the
//!   streaming scheduler (and any adversary tap) can attribute
//!   overlapped rounds correctly.
//! * [`linkid`] — typed identifiers for every link of a deployment,
//!   shared by adversary taps, the wire handshake and transcripts.
//! * [`frame`] — the length-prefixed frame format (handshake, round
//!   batches, orderly termination) the TCP transport speaks between
//!   deployment processes.
//! * [`sequence`] — the per-link frame ordering rules that make
//!   windowed (pipelined) rounds safe on blocking connections, and the
//!   [`sequence::RoundSequencer`] that asserts them.
//!
//! Sizes follow §8.1 of the paper: 256-byte sealed conversation messages
//! (240 bytes of payload + 16 bytes of encryption overhead) and 80-byte
//! invitations (32-byte sender key + 48 bytes of overhead).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conversation;
pub mod deaddrop;
pub mod dialing;
pub mod frame;
pub mod linkid;
pub mod message;
pub mod round;
pub mod sequence;

pub use frame::{BatchFrame, Frame, FrameError, Hello, FRAME_VERSION, MAX_FRAME_LEN};
pub use linkid::LinkId;
pub use round::{RoundId, RoundType};
pub use sequence::RoundSequencer;

/// Payload bytes available to a conversation message before sealing
/// (paper: "text messages (up to 240 bytes each)").
pub const MESSAGE_LEN: usize = 240;

/// A sealed conversation message: payload plus AEAD tag
/// (paper §8.1: "Conversation messages are 256 bytes long (including 16
/// byte encryption overhead)").
pub const SEALED_MESSAGE_LEN: usize = MESSAGE_LEN + 16;

/// A dead-drop identifier is 128 bits (paper §3.1).
pub const DEAD_DROP_ID_LEN: usize = 16;

/// An exchange request as seen by the last server: dead-drop ID plus the
/// sealed message deposited there.
pub const EXCHANGE_REQUEST_LEN: usize = DEAD_DROP_ID_LEN + SEALED_MESSAGE_LEN;

/// An exchange response: the sealed message retrieved from the dead drop
/// (or an indistinguishable random filler when the drop had one access).
pub const EXCHANGE_RESPONSE_LEN: usize = SEALED_MESSAGE_LEN;

/// The plaintext of a dialing invitation: the caller's long-term public
/// key.
pub const INVITATION_LEN: usize = 32;

/// A sealed invitation (paper §8.1: "Invitations are 80 bytes long
/// (including 48 bytes of overhead)").
pub const SEALED_INVITATION_LEN: usize = INVITATION_LEN + vuvuzela_crypto::sealedbox::OVERHEAD;

/// A dialing request as seen by the last server: target drop index plus
/// the sealed invitation.
pub const DIAL_REQUEST_LEN: usize = 4 + SEALED_INVITATION_LEN;

/// Errors produced when decoding wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer length did not match the (unique) valid length for this
    /// type.
    BadLength {
        /// Required length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// A field carried an out-of-range value (e.g. message length field
    /// exceeding the payload area).
    Malformed(&'static str),
    /// An end-to-end cryptographic operation failed.
    Crypto(vuvuzela_crypto::CryptoError),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::BadLength { expected, got } => {
                write!(f, "bad wire length: expected {expected}, got {got}")
            }
            WireError::Malformed(what) => write!(f, "malformed field: {what}"),
            WireError::Crypto(e) => write!(f, "crypto failure: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<vuvuzela_crypto::CryptoError> for WireError {
    fn from(e: vuvuzela_crypto::CryptoError) -> Self {
        WireError::Crypto(e)
    }
}

/// Checks a buffer against a type's unique valid length.
pub(crate) fn expect_len(buf: &[u8], expected: usize) -> Result<(), WireError> {
    if buf.len() != expected {
        return Err(WireError::BadLength {
            expected,
            got: buf.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes() {
        assert_eq!(SEALED_MESSAGE_LEN, 256, "paper §8.1: 256-byte messages");
        assert_eq!(SEALED_INVITATION_LEN, 80, "paper §8.1: 80-byte invitations");
        assert_eq!(DEAD_DROP_ID_LEN * 8, 128, "paper §3.1: 128-bit drop IDs");
    }

    #[test]
    fn expect_len_accepts_and_rejects() {
        assert!(expect_len(&[0u8; 4], 4).is_ok());
        assert_eq!(
            expect_len(&[0u8; 3], 4),
            Err(WireError::BadLength {
                expected: 4,
                got: 3
            })
        );
    }
}
