//! Typed identifiers for the links a deployment is made of.
//!
//! Every hop-to-hop connection — the aggregated clients→entry leg, each
//! inter-server hop, the CDN download leg, and (in a real deployment)
//! each individual client's connection to the entry — is named by a
//! [`LinkId`]. The id appears in three places that must agree:
//!
//! * adversary taps receive it in their `TapContext`, replacing the
//!   stringly-typed link names the taps used to match on;
//! * the wire handshake ([`crate::frame::Hello`]) carries it so both
//!   ends of a TCP connection verify they agree on *which* link of
//!   *which* deployment they terminate;
//! * transcripts render it through `Display`, which reproduces the
//!   legacy diagnostic names (`"entry->server0"`, …) byte for byte, so
//!   typed ids never perturb a pinned transcript.

/// One link of a Vuvuzela deployment, as a typed endpoint pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkId {
    /// The aggregated clients→entry request leg.
    Clients,
    /// Inter-server hop `i`: `Hop(0)` is entry→server 0, `Hop(i)` is
    /// server i−1 → server i.
    Hop(u32),
    /// The CDN leg serving invitation-drop downloads (§5.5).
    Cdn,
    /// One individual client's connection to the entry (real
    /// deployments; the sim aggregates clients onto [`LinkId::Clients`]).
    Client(u32),
}

impl LinkId {
    /// Encodes as a `u64` for the wire: the variant tag in the high 32
    /// bits, the index in the low 32.
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            LinkId::Clients => 0,
            LinkId::Hop(i) => (1 << 32) | u64::from(i),
            LinkId::Cdn => 2 << 32,
            LinkId::Client(i) => (3 << 32) | u64::from(i),
        }
    }

    /// Decodes a wire `u64`; `None` for an unknown tag or an index on a
    /// variant that has none.
    #[must_use]
    pub fn from_code(code: u64) -> Option<LinkId> {
        let index = (code & 0xFFFF_FFFF) as u32;
        match code >> 32 {
            0 if index == 0 => Some(LinkId::Clients),
            1 => Some(LinkId::Hop(index)),
            2 if index == 0 => Some(LinkId::Cdn),
            3 => Some(LinkId::Client(index)),
            _ => None,
        }
    }
}

impl core::fmt::Display for LinkId {
    /// Renders the legacy diagnostic names exactly, so transcripts and
    /// log lines are unchanged by the move to typed ids.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LinkId::Clients => f.write_str("clients->entry"),
            LinkId::Hop(0) => f.write_str("entry->server0"),
            LinkId::Hop(i) => write!(f, "server{}->server{}", i - 1, i),
            LinkId::Cdn => f.write_str("cdn->clients"),
            LinkId::Client(i) => write!(f, "client{i}->entry"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_names() {
        assert_eq!(LinkId::Clients.to_string(), "clients->entry");
        assert_eq!(LinkId::Hop(0).to_string(), "entry->server0");
        assert_eq!(LinkId::Hop(1).to_string(), "server0->server1");
        assert_eq!(LinkId::Hop(5).to_string(), "server4->server5");
        assert_eq!(LinkId::Cdn.to_string(), "cdn->clients");
        assert_eq!(LinkId::Client(7).to_string(), "client7->entry");
    }

    #[test]
    fn code_roundtrips() {
        for id in [
            LinkId::Clients,
            LinkId::Hop(0),
            LinkId::Hop(3),
            LinkId::Hop(u32::MAX),
            LinkId::Cdn,
            LinkId::Client(0),
            LinkId::Client(41),
        ] {
            assert_eq!(LinkId::from_code(id.code()), Some(id));
        }
    }

    #[test]
    fn bad_codes_rejected() {
        assert_eq!(LinkId::from_code(9 << 32), None);
        assert_eq!(LinkId::from_code(u64::MAX), None);
        // Index bits on index-less variants are malformed, not ignored:
        // two distinct codes must never decode to the same id.
        assert_eq!(LinkId::from_code(1), None);
        assert_eq!(LinkId::from_code((2 << 32) | 5), None);
    }
}
