//! Client-level framing inside the 240-byte conversation payload.
//!
//! The paper leaves retransmission "to a higher level (in the client
//! itself)" (§3.1). This module defines that level: a tiny header with a
//! message kind, a sequence number, a cumulative ack, and a length-
//! prefixed text body, zero-padded to exactly [`MESSAGE_LEN`] bytes so
//! that framing never changes the wire size.
//!
//! Layout (little-endian):
//!
//! ```text
//! ┌──────┬─────────┬─────────┬─────────┬──────────────┬─────────┐
//! │ kind │ seq u64 │ ack u64 │ len u16 │ body ≤221 B  │ zeros   │
//! │ 1 B  │ 8 B     │ 8 B     │ 2 B     │              │         │
//! └──────┴─────────┴─────────┴─────────┴──────────────┴─────────┘
//! ```

use crate::{expect_len, WireError, MESSAGE_LEN};

/// Header bytes taken by the framing.
pub const HEADER_LEN: usize = 1 + 8 + 8 + 2;

/// The maximum text body per conversation message.
pub const MAX_BODY_LEN: usize = MESSAGE_LEN - HEADER_LEN;

/// The kind of a framed client message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MessageKind {
    /// No user data this round; carries only the ack (the "empty message"
    /// of Algorithm 1 when the user "has not typed anything").
    KeepAlive,
    /// Carries user data in the body.
    Data,
}

impl MessageKind {
    fn to_byte(self) -> u8 {
        match self {
            MessageKind::KeepAlive => 0,
            MessageKind::Data => 1,
        }
    }

    fn from_byte(b: u8) -> Result<MessageKind, WireError> {
        match b {
            0 => Ok(MessageKind::KeepAlive),
            1 => Ok(MessageKind::Data),
            _ => Err(WireError::Malformed("unknown message kind")),
        }
    }
}

/// A framed client-to-client message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FramedMessage {
    /// Message kind.
    pub kind: MessageKind,
    /// Sender's sequence number for this data message (undefined but
    /// present for keep-alives; set to the next seq to be sent).
    pub seq: u64,
    /// Cumulative acknowledgement: all partner messages with
    /// `seq < ack` have been received.
    pub ack: u64,
    /// The text body (empty for keep-alives).
    pub body: Vec<u8>,
}

impl FramedMessage {
    /// Builds a data message.
    ///
    /// # Panics
    ///
    /// Panics if `body` exceeds [`MAX_BODY_LEN`]; callers split longer
    /// texts into multiple rounds (fixed message sizes are load-bearing
    /// for privacy, so there is no oversized escape hatch).
    #[must_use]
    pub fn data(seq: u64, ack: u64, body: &[u8]) -> FramedMessage {
        assert!(
            body.len() <= MAX_BODY_LEN,
            "body {} exceeds MAX_BODY_LEN {MAX_BODY_LEN}",
            body.len()
        );
        FramedMessage {
            kind: MessageKind::Data,
            seq,
            ack,
            body: body.to_vec(),
        }
    }

    /// Builds a keep-alive carrying only an ack.
    #[must_use]
    pub fn keep_alive(next_seq: u64, ack: u64) -> FramedMessage {
        FramedMessage {
            kind: MessageKind::KeepAlive,
            seq: next_seq,
            ack,
            body: Vec::new(),
        }
    }

    /// Encodes to exactly [`MESSAGE_LEN`] bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![0u8; MESSAGE_LEN];
        out[0] = self.kind.to_byte();
        out[1..9].copy_from_slice(&self.seq.to_le_bytes());
        out[9..17].copy_from_slice(&self.ack.to_le_bytes());
        out[17..19].copy_from_slice(&(self.body.len() as u16).to_le_bytes());
        out[HEADER_LEN..HEADER_LEN + self.body.len()].copy_from_slice(&self.body);
        out
    }

    /// Decodes a padded [`MESSAGE_LEN`] buffer.
    ///
    /// # Errors
    ///
    /// [`WireError::BadLength`] for wrong buffer sizes and
    /// [`WireError::Malformed`] for invalid kind or length fields.
    pub fn decode(buf: &[u8]) -> Result<FramedMessage, WireError> {
        expect_len(buf, MESSAGE_LEN)?;
        let kind = MessageKind::from_byte(buf[0])?;
        let mut u64buf = [0u8; 8];
        u64buf.copy_from_slice(&buf[1..9]);
        let seq = u64::from_le_bytes(u64buf);
        u64buf.copy_from_slice(&buf[9..17]);
        let ack = u64::from_le_bytes(u64buf);
        let len = u16::from_le_bytes([buf[17], buf[18]]) as usize;
        if len > MAX_BODY_LEN {
            return Err(WireError::Malformed("body length exceeds payload area"));
        }
        if kind == MessageKind::KeepAlive && len != 0 {
            return Err(WireError::Malformed("keep-alive with non-empty body"));
        }
        Ok(FramedMessage {
            kind,
            seq,
            ack,
            body: buf[HEADER_LEN..HEADER_LEN + len].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_roundtrip() {
        let msg = FramedMessage::data(42, 17, b"meet at the usual place");
        let buf = msg.encode();
        assert_eq!(buf.len(), MESSAGE_LEN);
        assert_eq!(FramedMessage::decode(&buf).expect("decode"), msg);
    }

    #[test]
    fn keep_alive_roundtrip() {
        let msg = FramedMessage::keep_alive(3, 9);
        let decoded = FramedMessage::decode(&msg.encode()).expect("decode");
        assert_eq!(decoded, msg);
        assert_eq!(decoded.kind, MessageKind::KeepAlive);
        assert!(decoded.body.is_empty());
    }

    #[test]
    fn empty_and_max_bodies() {
        for len in [0usize, 1, MAX_BODY_LEN] {
            let body = vec![b'x'; len];
            let msg = FramedMessage::data(0, 0, &body);
            assert_eq!(FramedMessage::decode(&msg.encode()).expect("ok").body, body);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_BODY_LEN")]
    fn oversized_body_panics() {
        let _ = FramedMessage::data(0, 0, &vec![0u8; MAX_BODY_LEN + 1]);
    }

    #[test]
    fn malformed_inputs_rejected() {
        // Wrong length.
        assert!(matches!(
            FramedMessage::decode(&[0u8; 10]),
            Err(WireError::BadLength { .. })
        ));
        // Bad kind byte.
        let mut buf = FramedMessage::keep_alive(0, 0).encode();
        buf[0] = 9;
        assert!(matches!(
            FramedMessage::decode(&buf),
            Err(WireError::Malformed(_))
        ));
        // Length field pointing past the payload area.
        let mut buf = FramedMessage::data(0, 0, b"hi").encode();
        buf[17..19].copy_from_slice(&(MAX_BODY_LEN as u16 + 1).to_le_bytes());
        assert!(matches!(
            FramedMessage::decode(&buf),
            Err(WireError::Malformed(_))
        ));
        // Keep-alive with body length.
        let mut buf = FramedMessage::keep_alive(0, 0).encode();
        buf[17] = 1;
        assert!(matches!(
            FramedMessage::decode(&buf),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn encoding_is_always_fixed_size() {
        for len in [0usize, 7, 100, MAX_BODY_LEN] {
            assert_eq!(
                FramedMessage::data(1, 2, &vec![0u8; len]).encode().len(),
                MESSAGE_LEN
            );
        }
    }
}
