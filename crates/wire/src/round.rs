//! Round identifiers for in-flight batch tagging.
//!
//! With the sequential chain, "the round" was implicit — exactly one
//! round existed between two hops at any moment. The streaming scheduler
//! keeps up to `chain_len` rounds in flight simultaneously, so every
//! hand-off between stages (and every link transfer an adversary taps)
//! must carry an explicit round tag: a server holding state for several
//! rounds needs the tag to pick the right mix permutation and layer
//! keys, and the §2.3 adversary's per-round observables must attribute
//! each batch to the round it belongs to, not to the wall-clock order in
//! which overlapped batches happen to move.
//!
//! [`RoundId`] is that tag: an 8-byte little-endian wire value with
//! total order (rounds are scheduled strictly increasing).
//!
//! Mixed schedules add a second half to the tag: a real deployment
//! interleaves conversation rounds with dialing rounds (§5) on the same
//! mix chain, so an in-flight batch is identified by *which* round it
//! belongs to ([`RoundId`]) **and** which protocol that round runs
//! ([`RoundType`] — the two differ in payload size, noise recipe, and
//! whether a backward pass exists at all).

use crate::{expect_len, WireError};

/// Serialized size of a [`RoundId`].
pub const ROUND_ID_LEN: usize = 8;

/// A protocol round number, tagged onto every inter-stage batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RoundId(pub u64);

impl RoundId {
    /// Encodes as 8 little-endian bytes.
    #[must_use]
    pub fn encode(self) -> [u8; ROUND_ID_LEN] {
        self.0.to_le_bytes()
    }

    /// Decodes from exactly [`ROUND_ID_LEN`] bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::BadLength`] for any other length.
    pub fn decode(buf: &[u8]) -> Result<RoundId, WireError> {
        expect_len(buf, ROUND_ID_LEN)?;
        let mut bytes = [0u8; ROUND_ID_LEN];
        bytes.copy_from_slice(buf);
        Ok(RoundId(u64::from_le_bytes(bytes)))
    }

    /// The round scheduled after this one.
    #[must_use]
    pub fn next(self) -> RoundId {
        RoundId(self.0 + 1)
    }
}

impl From<u64> for RoundId {
    fn from(round: u64) -> RoundId {
        RoundId(round)
    }
}

impl From<RoundId> for u64 {
    fn from(id: RoundId) -> u64 {
        id.0
    }
}

impl core::fmt::Display for RoundId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "round {}", self.0)
    }
}

/// Serialized size of a [`RoundType`].
pub const ROUND_TYPE_LEN: usize = 1;

/// Which protocol a round runs — the protocol half of the end-to-end
/// round tag under mixed schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RoundType {
    /// A conversation round (Algorithm 2): forward and backward passes.
    Conversation,
    /// A dialing round (§5): forward-only, deposits into invitation
    /// drops.
    Dialing,
}

impl RoundType {
    /// Encodes as one byte (0 = conversation, 1 = dialing).
    #[must_use]
    pub fn encode(self) -> [u8; ROUND_TYPE_LEN] {
        match self {
            RoundType::Conversation => [0],
            RoundType::Dialing => [1],
        }
    }

    /// Decodes from exactly [`ROUND_TYPE_LEN`] bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::BadLength`] for any other length,
    /// [`WireError::Malformed`] for an unknown discriminant.
    pub fn decode(buf: &[u8]) -> Result<RoundType, WireError> {
        expect_len(buf, ROUND_TYPE_LEN)?;
        match buf[0] {
            0 => Ok(RoundType::Conversation),
            1 => Ok(RoundType::Dialing),
            _ => Err(WireError::Malformed("unknown round type")),
        }
    }
}

impl RoundType {
    /// Canonical lowercase protocol label, stable across releases — used
    /// by transcript formats (e.g. the deployment simulator's canonical
    /// per-round records) that hash their rendered output, where a
    /// silent `Display` change would break byte-for-byte reproducibility
    /// guarantees. `Display` renders the same string.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RoundType::Conversation => "conversation",
            RoundType::Dialing => "dialing",
        }
    }
}

impl core::fmt::Display for RoundType {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_and_orders() {
        let id = RoundId(0x0123_4567_89AB_CDEF);
        assert_eq!(RoundId::decode(&id.encode()), Ok(id));
        assert!(RoundId(3) < RoundId(4));
        assert_eq!(RoundId(3).next(), RoundId(4));
        assert_eq!(u64::from(RoundId(9)), 9);
        assert_eq!(RoundId::from(9u64), RoundId(9));
    }

    #[test]
    fn round_type_roundtrips() {
        for rtype in [RoundType::Conversation, RoundType::Dialing] {
            assert_eq!(RoundType::decode(&rtype.encode()), Ok(rtype));
        }
        assert!(matches!(
            RoundType::decode(&[7]),
            Err(WireError::Malformed(_))
        ));
        assert!(RoundType::decode(&[]).is_err());
        assert_eq!(RoundType::Dialing.to_string(), "dialing");
        assert_eq!(RoundType::Conversation.as_str(), "conversation");
        assert_eq!(RoundType::Dialing.as_str(), RoundType::Dialing.to_string());
    }

    #[test]
    fn rejects_wrong_lengths() {
        assert!(matches!(
            RoundId::decode(&[0u8; 7]),
            Err(WireError::BadLength {
                expected: 8,
                got: 7
            })
        ));
        assert!(RoundId::decode(&[0u8; 9]).is_err());
    }
}
