//! Frame ordering rules for wire links, stated once and asserted by
//! [`RoundSequencer`].
//!
//! The windowed (pipelined) wire mode keeps up to `chain_len` rounds
//! in flight, so a single blocking connection carries interleaved
//! rounds. Interleaving is only safe because every link obeys a total
//! per-direction order, which is what lets a receiver demultiplex
//! frames by round tag alone, without timestamps or acknowledgements:
//!
//! 1. **Rounds strictly increase per link and direction.** The client
//!    driver admits rounds in schedule order; every node processes and
//!    forwards batches in the order they arrive on a link (FIFO
//!    sockets), and the tail turns conversation rounds around in
//!    arrival order — so *forward* batches on any link carry strictly
//!    increasing round ids, and so do *backward* batches (replies and
//!    dialing completions come back in admission order). A round id
//!    that repeats or goes backwards is a protocol violation
//!    ([`crate::FrameError::OutOfOrder`]), not congestion.
//! 2. **One `Bye` terminates each direction, after its last batch.**
//!    The entry sends the forward `Bye` after the final forward batch;
//!    each server relays it downstream once its own forwards are out.
//!    The tail answers with the backward `Bye` after its final
//!    backward batch, and each server relays it upstream only once
//!    every round it forwarded has come back. FIFO ordering therefore
//!    guarantees no batch is abandoned behind a `Bye`, and a frame
//!    *after* one is a violation.
//! 3. **Cross-link order is unconstrained.** A node terminating two
//!    links may legally see round *r+1* arrive upstream before round
//!    *r*'s replies arrive downstream — that overlap is the whole
//!    point of windowing. Only the per-link per-direction sequences
//!    above are total.
//!
//! Receivers instantiate one [`RoundSequencer`] per link + direction
//! and feed it every batch round id; the sequencer turns a violation
//! into the typed [`crate::FrameError::OutOfOrder`] so a corrupt or
//! hostile peer fails loudly at the frame layer instead of corrupting
//! a mix round.

use crate::frame::FrameError;
use crate::round::RoundId;

/// Asserts rule 1 and rule 2 above for one link + direction: round ids
/// strictly increase and nothing follows the `Bye`.
#[derive(Clone, Debug, Default)]
pub struct RoundSequencer {
    last: Option<u64>,
    done: bool,
}

impl RoundSequencer {
    /// A sequencer that has seen nothing yet.
    #[must_use]
    pub fn new() -> RoundSequencer {
        RoundSequencer::default()
    }

    /// Feeds the next batch's round id.
    ///
    /// # Errors
    ///
    /// [`FrameError::OutOfOrder`] when the id does not strictly
    /// increase, or when any batch follows the direction's `Bye`.
    pub fn observe(&mut self, round: RoundId) -> Result<(), FrameError> {
        let violation = |prev: u64| FrameError::OutOfOrder {
            prev,
            next: round.0,
        };
        if self.done {
            return Err(violation(self.last.unwrap_or(u64::MAX)));
        }
        match self.last {
            Some(prev) if round.0 <= prev => Err(violation(prev)),
            _ => {
                self.last = Some(round.0);
                Ok(())
            }
        }
    }

    /// Marks the direction's `Bye`; every later [`observe`] is a
    /// violation.
    ///
    /// [`observe`]: RoundSequencer::observe
    pub fn bye(&mut self) {
        self.done = true;
    }

    /// The last round id observed, if any.
    #[must_use]
    pub fn last(&self) -> Option<u64> {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strictly_increasing_rounds_pass() {
        let mut seq = RoundSequencer::new();
        for round in [0, 1, 5, 6, 100] {
            seq.observe(RoundId(round)).expect("increasing");
        }
        assert_eq!(seq.last(), Some(100));
    }

    #[test]
    fn repeats_and_regressions_fail() {
        let mut seq = RoundSequencer::new();
        seq.observe(RoundId(4)).expect("first");
        assert!(matches!(
            seq.observe(RoundId(4)),
            Err(FrameError::OutOfOrder { prev: 4, next: 4 })
        ));
        assert!(matches!(
            seq.observe(RoundId(2)),
            Err(FrameError::OutOfOrder { prev: 4, next: 2 })
        ));
        // A failed observation does not advance the sequence.
        seq.observe(RoundId(5)).expect("still live at 4");
    }

    #[test]
    fn nothing_follows_the_bye() {
        let mut seq = RoundSequencer::new();
        seq.observe(RoundId(1)).expect("first");
        seq.bye();
        assert!(matches!(
            seq.observe(RoundId(2)),
            Err(FrameError::OutOfOrder { prev: 1, next: 2 })
        ));
    }
}
