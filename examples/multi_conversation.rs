//! Multiple concurrent conversations (paper §9).
//!
//! "To enable multiple concurrent conversations, Vuvuzela clients can
//! perform multiple conversation protocol exchanges in each round. …
//! the client should pick a maximum number of conversations a priori
//! (say, 5), and always send that many conversation protocol exchange
//! messages per round."
//!
//! This example runs clients with 3 slots each: Alice talks to Bob and
//! Carol simultaneously while her third slot sends fakes — and the wire
//! traffic is identical to a client with three real conversations.
//!
//! Run: `cargo run --release --example multi_conversation`

use vuvuzela::core::testkit::TestNet;

fn main() {
    let mut net = TestNet::builder()
        .servers(3)
        .noise_mu(30.0)
        .slots(3)
        .seed(5)
        .build();

    let alice = net.add_user("alice");
    let bob = net.add_user("bob");
    let carol = net.add_user("carol");
    let dave = net.add_user("dave"); // fully idle: three fake slots

    // One invitation goes out per dialing round (fixed rate, §5.2), so
    // dialing two partners takes two rounds.
    net.dial(alice, bob);
    net.dial(alice, carol);
    net.run_dialing_round();
    net.run_dialing_round();
    net.accept_all_invitations();
    // Snapshot the client-link meter so the per-round arithmetic below
    // covers conversation rounds only (dialing requests share the link).
    let after_dialing = net.chain().client_link().forward_meter().messages();

    net.queue_message(alice, bob, b"bob: the meeting moved to 3pm");
    net.queue_message(alice, carol, b"carol: bring the slides");
    net.queue_message(bob, alice, b"got it");
    net.run_conversation_round();
    net.run_conversation_round();

    println!("bob received:   {:?}", strings(net.received(bob)));
    println!("carol received: {:?}", strings(net.received(carol)));
    println!("alice received: {:?}", strings(net.received(alice)));
    assert_eq!(net.received(bob).len(), 1);
    assert_eq!(net.received(carol).len(), 1);
    assert_eq!(net.received(alice).len(), 1);

    // Every client sent exactly 3 requests per round, busy or idle.
    let per_round_requests = (net.chain().client_link().forward_meter().messages() - after_dialing)
        / net.conversation_round();
    println!(
        "\nrequests per conversation round: {per_round_requests} \
         (4 users × 3 slots, real or fake — indistinguishable)"
    );
    assert_eq!(per_round_requests, 12);
    let _ = dave;
}

fn strings(msgs: Vec<Vec<u8>>) -> Vec<String> {
    msgs.into_iter()
        .map(|m| String::from_utf8_lossy(&m).into_owned())
        .collect()
}
