//! Noise planner: the operator-facing tool for choosing (µ, b).
//!
//! Given a privacy target (ε′, δ′) and how many rounds of protection a
//! deployment needs, this walks the paper's §6.4 methodology: sweep the
//! Laplace scale b for each candidate mean µ, report the protected-round
//! coverage, and translate ε′ into the posterior-belief language of the
//! paper ("plausible deniability").
//!
//! Run: `cargo run --release --example noise_planner -- [rounds]`
//! (default 250,000 rounds — the paper's standard configuration)

use vuvuzela::dp::planner::{max_protected_rounds, posterior_bound, tune_scale, PrivacyTarget};
use vuvuzela::dp::Protocol;

fn main() {
    let rounds_needed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.replace('_', "").parse().ok())
        .unwrap_or(250_000);
    let target = PrivacyTarget::default();

    println!("target: ε' = ln 2, δ' = 1e-4 after {rounds_needed} conversation rounds\n");

    // Sweep candidate means until one covers the requested rounds.
    println!(
        "{:>10} {:>10} {:>14} {:>9}",
        "µ", "best b", "rounds covered", "enough?"
    );
    let mut chosen = None;
    for i in 1..=12 {
        let mu = 50_000.0 * f64::from(i);
        let tuned = tune_scale(Protocol::Conversation, mu, target);
        let enough = tuned.rounds >= rounds_needed;
        println!(
            "{:>10.0} {:>10.0} {:>14} {:>9}",
            mu,
            tuned.b,
            tuned.rounds,
            if enough { "yes" } else { "no" }
        );
        if enough && chosen.is_none() {
            chosen = Some((mu, tuned));
        }
        if enough {
            break;
        }
    }

    match chosen {
        Some((mu, tuned)) => {
            println!(
                "\nplan: µ = {mu:.0}, b = {:.0} per noising server (conversation protocol)",
                tuned.b
            );
            println!(
                "cost: ≈{:.0} cover requests per mixing server per round, forever — \n\
                 independent of the user count (§6.4).",
                2.0 * mu
            );
            let dial = tune_scale(Protocol::Dialing, mu / 20.0, target);
            println!(
                "dialing: µ = {:.0}, b = {:.0} covers {} dialing rounds",
                mu / 20.0,
                dial.b,
                dial.rounds
            );
            println!("\nwhat ε' = ln 2 buys (posterior after {rounds_needed} rounds):");
            for prior in [0.01, 0.25, 0.5] {
                println!(
                    "  adversary prior {:>4.0}% → posterior ≤ {:.1}%",
                    prior * 100.0,
                    posterior_bound(prior, target.epsilon) * 100.0
                );
            }
        }
        None => {
            println!(
                "\nno µ ≤ 600,000 covers {rounds_needed} rounds; raise µ or lower the target."
            );
        }
    }

    // Show the paper's three reference points for context.
    println!("\npaper's reference configurations (§6.4):");
    for (mu, b) in [
        (150_000.0, 7_300.0),
        (300_000.0, 13_800.0),
        (450_000.0, 20_000.0),
    ] {
        let k = max_protected_rounds(Protocol::Conversation, mu, b, target);
        println!("  µ={mu:>7.0} b={b:>6.0} → {k} rounds at (ln 2, 1e-4)");
    }
}
