//! A million-client conversation round (§8 scale) on one machine.
//!
//! The paper's deployment target is millions of users per round; the
//! per-object [`Client`](vuvuzela::core::Client) representation gets a
//! harness nowhere near that (one heap object, one DH-table set and one
//! request `Vec` per user). A [`ClientCohort`] holds the whole
//! population in flat struct-of-arrays storage — one shared table set,
//! requests built worker-striped straight into a single round arena —
//! and stays byte-identical to the per-object reference (the
//! `cohort_equivalence` test pins that).
//!
//! This example joins 1,000,000 clients (a few of them in real
//! conversations, the rest idle cover), runs one steady-state
//! conversation round end to end through a 3-server chain with the
//! sharded dead-drop exchange, ingests every reply, and prints the
//! stage timings.
//!
//! Run: `cargo run --release --example population`
//! (minutes on a small box; set `VUVUZELA_POPULATION=50000` to scale
//! the crowd down).

use std::time::Instant;

use vuvuzela::core::chain::Batch;
use vuvuzela::core::cohort::ClientCohort;
use vuvuzela::core::{Chain, SystemConfig};
use vuvuzela::dp::{NoiseDistribution, NoiseMode};

fn main() {
    let n: usize = std::env::var("VUVUZELA_POPULATION")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let config = SystemConfig {
        chain_len: 3,
        // Laptop-scale cover traffic; production uses µ = 300,000 per
        // noising server (§8.1) and simply makes the round larger.
        conversation_noise: NoiseDistribution::new(2_000.0, 101.0),
        dialing_noise: NoiseDistribution::new(1_000.0, 101.0),
        noise_mode: NoiseMode::Deterministic,
        workers: 2,
        conversation_slots: 1,
        retransmit_after: 2,
        exchange_shards: 4,
    };
    let mut chain = Chain::new(config.clone(), 1);
    let pks = chain.server_public_keys();

    println!("joining {n} clients ...");
    let start = Instant::now();
    let mut cohort = ClientCohort::with_own_tables(config, 1, &pks);
    cohort.join(n);
    // Four real conversations ride the cover crowd, a message each way.
    for pair in 0..4usize {
        let (a, b) = (2 * pair, 2 * pair + 1);
        cohort.pair(a, b).expect("pair");
        let (pk_a, pk_b) = (cohort.public_key(a), cohort.public_key(b));
        cohort
            .queue_message(a, &pk_b, format!("hello from {a}").as_bytes())
            .expect("queue");
        cohort
            .queue_message(b, &pk_a, format!("hello from {b}").as_bytes())
            .expect("queue");
    }
    println!(
        "cohort ready in {:.1} s ({} mutual pairs, rest idle cover)",
        start.elapsed().as_secs_f64(),
        cohort.mutual_pairs()
    );

    let round = 0u64;
    let start = Instant::now();
    let buf = cohort.build_conversation_round(round);
    let build_secs = start.elapsed().as_secs_f64();
    println!(
        "built {} onions in {:.1} s ({:.0} clients/s)",
        buf.len(),
        build_secs,
        n as f64 / build_secs
    );

    let start = Instant::now();
    let (replies, timing) = chain.run_conversation_round(round, Batch::Flat(buf));
    let round_secs = start.elapsed().as_secs_f64();
    println!(
        "chain round: {:.1} s total (exchange {:.1} s over 4 shards), {} replies",
        round_secs,
        timing.exchange.as_secs_f64(),
        replies.len()
    );

    let start = Instant::now();
    cohort.handle_conversation_replies(round, &replies);
    let ingest_secs = start.elapsed().as_secs_f64();
    println!("ingested every reply in {ingest_secs:.1} s");

    for pair in 0..4usize {
        let (a, b) = (2 * pair, 2 * pair + 1);
        assert_eq!(
            cohort.delivered_from(b, &cohort.public_key(a)),
            vec![format!("hello from {a}").into_bytes()],
            "pair {pair} lost its message"
        );
        assert_eq!(
            cohort.delivered_from(a, &cohort.public_key(b)),
            vec![format!("hello from {b}").into_bytes()],
            "pair {pair} lost its reply"
        );
    }
    let total = build_secs + round_secs + ingest_secs;
    println!(
        "round complete: all 8 messages delivered; {total:.1} s end to end \
         ({:.0} clients/s)",
        n as f64 / total
    );
}
