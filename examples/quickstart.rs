//! Quickstart: two users dial and converse over a three-server chain.
//!
//! This is the smallest complete Vuvuzela deployment: a chain of three
//! mix servers (one honest server suffices for privacy), an untrusted
//! entry, and two clients. Alice dials Bob through the dialing protocol,
//! Bob accepts the invitation, and they exchange text messages through
//! per-round dead drops.
//!
//! Run: `cargo run --release --example quickstart`

use vuvuzela::core::testkit::TestNet;

fn main() {
    // A 3-server chain (paper §8.1) with deterministic cover traffic of
    // µ=50 per noising server — laptop-scale parameters; production uses
    // µ=300,000 (see SystemConfig::paper_scale()).
    let mut net = TestNet::builder()
        .servers(3)
        .noise_mu(50.0)
        .dialing_mu(10.0)
        .seed(7)
        .build();

    let alice = net.add_user("alice");
    let bob = net.add_user("bob");
    println!("users connected: alice, bob (both clients always send — idle or not)");

    // --- Dialing (paper §5): Alice invites Bob to a conversation. ---
    net.dial(alice, bob);
    net.run_dialing_round();
    println!(
        "dialing round 0 complete; bob's invitations: {:?}",
        net.client(bob)
            .pending_invitations()
            .iter()
            .map(|pk| format!("{pk:?}"))
            .collect::<Vec<_>>()
    );
    net.accept_all_invitations();

    // --- Conversation (paper §4): per-round dead-drop exchanges. ---
    net.queue_message(alice, bob, b"hello, Bob! this line is metadata-private.");
    net.queue_message(bob, alice, b"hi Alice, nobody can tell we're talking.");
    net.run_conversation_round();

    for (user, name) in [(alice, "alice"), (bob, "bob")] {
        for msg in net.received(user) {
            println!("{name} received: {}", String::from_utf8_lossy(&msg));
        }
    }

    // What the (compromised) last server saw: only a noised histogram.
    let (_, obs) = net.chain().conversation_observables()[0];
    println!(
        "\nlast server observed: m1={} single-access drops, m2={} double-access drops",
        obs.m1, obs.m2
    );
    println!(
        "(the real conversation contributes exactly 1 to m2; the other {} are cover traffic)",
        obs.m2 - 1
    );
}
