//! Traffic analysis in action: the §4.2 attacks against a noiseless
//! mixnet, and why they fail against Vuvuzela.
//!
//! Part 1 runs the *disruption attack* end to end through the real
//! chain: a coalition controlling the first and last servers drops every
//! request except Alice's and Bob's, then reads the dead-drop histogram.
//! Without noise this is a perfect oracle; with noise the histogram is
//! dominated by cover traffic.
//!
//! Part 2 evaluates all three attacks statistically (10,000+ trials at
//! the observable level) and compares attacker accuracy with the
//! differential-privacy ceiling.
//!
//! Run: `cargo run --release --example traffic_analysis`

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use vuvuzela::adversary::attacks::{DisruptionAttack, IntersectionAttack};
use vuvuzela::adversary::bounds::max_accuracy;
use vuvuzela::adversary::model::ObservableModel;
use vuvuzela::adversary::taps::KeepOnly;
use vuvuzela::baseline::no_noise;
use vuvuzela::core::testkit::TestNet;
use vuvuzela::core::SystemConfig;
use vuvuzela::dp::accounting::conversation_round;
use vuvuzela::dp::{NoiseDistribution, NoiseMode};

fn main() {
    println!("=== Part 1: disruption attack through the real chain ===\n");
    for (label, noised) in [("no-noise mixnet", false), ("Vuvuzela", true)] {
        let m2 = run_disruption(noised, true);
        let m2_idle = run_disruption(noised, false);
        println!("{label:>16}: m2 with Alice↔Bob talking = {m2}, with Alice idle = {m2_idle}");
        if !noised {
            println!(
                "{:>16}  → the single-round histogram is a perfect conversation oracle",
                ""
            );
        } else {
            println!(
                "{:>16}  → both values sit inside the noise distribution; one sample says nothing",
                ""
            );
        }
    }

    println!("\n=== Part 2: attack accuracy over many trials (observable model) ===\n");
    let mut rng = StdRng::seed_from_u64(99);
    let no_noise_model = ObservableModel {
        noising_servers: 2,
        noise: NoiseDistribution::new(1.0, 1.0),
        mode: NoiseMode::Off,
    };
    let vuvuzela_model = ObservableModel {
        noising_servers: 2,
        noise: NoiseDistribution::new(1_000.0, 50.0),
        mode: NoiseMode::Sampled,
    };
    let round = conversation_round(1_000.0, 50.0);
    let ceiling = max_accuracy(round.epsilon, round.delta);

    let attack = IntersectionAttack { window: 5 };
    println!(
        "intersection attack: no-noise {:.1}%, Vuvuzela {:.1}% (DP ceiling {:.1}%)",
        100.0 * attack.evaluate(&mut rng, &no_noise_model, 5, 4000),
        100.0 * attack.evaluate(&mut rng, &vuvuzela_model, 5, 4000),
        100.0 * ceiling
    );
    println!(
        "disruption attack:   no-noise {:.1}%, Vuvuzela {:.1}% (DP ceiling {:.1}%)",
        100.0 * DisruptionAttack::evaluate(&mut rng, &no_noise_model, 4000),
        100.0 * DisruptionAttack::evaluate(&mut rng, &vuvuzela_model, 4000),
        100.0 * ceiling
    );
    println!("\n50% = coin flip; the noise pushes a perfect oracle down to the DP bound.");
}

/// Runs one round with the disruption tap installed; returns the
/// last-server m2 the attacking coalition observes.
fn run_disruption(noised: bool, talking: bool) -> u64 {
    let base = SystemConfig {
        conversation_noise: NoiseDistribution::new(40.0, 8.0),
        ..SystemConfig::default()
    };
    let config = if noised {
        base
    } else {
        no_noise::config_from(&base)
    };
    let mut net = TestNet::builder().config(config).seed(21).build();

    let alice = net.add_user("alice");
    let bob = net.add_user("bob");
    for i in 0..6 {
        let u = net.add_user(format!("user{i}"));
        let _ = u;
    }
    if talking {
        net.dial(alice, bob);
        net.run_dialing_round();
        net.accept_all_invitations();
    }

    // The compromised first server keeps only Alice's and Bob's requests
    // (clients 0 and 1 in batch order on the clients→entry link).
    net.chain_mut()
        .client_link_mut()
        .attach_tap(Arc::new(Mutex::new(KeepOnly {
            indices: vec![0, 1],
            only_round: None,
        })));

    net.run_conversation_round();
    let (_, obs) = *net
        .chain()
        .conversation_observables()
        .last()
        .expect("one round ran");
    obs.m2
}
