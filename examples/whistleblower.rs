//! The paper's motivating scenario (§1): a source talks to a reporter
//! while a global adversary watches **every** network link.
//!
//! We attach a recording tap to every link in the deployment — the
//! in-code version of "an adversary that observes all network traffic" —
//! run a conversation, and then audit what the adversary captured:
//! fixed-size ciphertexts, counts independent of who is talking, and a
//! noised access histogram whose information leakage is bounded by
//! differential privacy.
//!
//! Run: `cargo run --release --example whistleblower`

use parking_lot::Mutex;
use std::sync::Arc;
use vuvuzela::core::testkit::TestNet;
use vuvuzela::dp::accounting::conversation_round;
use vuvuzela::dp::planner::posterior_bound;
use vuvuzela::net::RecordingTap;

fn main() {
    let mu = 50.0;
    let mut net = TestNet::builder().servers(3).noise_mu(mu).seed(11).build();
    let source = net.add_user("source");
    let reporter = net.add_user("reporter");
    let _bystander = net.add_user("bystander");

    // Global passive adversary: a tap on every link.
    let taps: Vec<Arc<Mutex<RecordingTap>>> = (0..4)
        .map(|_| Arc::new(Mutex::new(RecordingTap::new())))
        .collect();
    {
        let chain = net.chain_mut();
        chain.client_link_mut().attach_tap(taps[0].clone());
        for i in 0..3 {
            let tap: Arc<Mutex<dyn vuvuzela::net::Tap>> = taps[i + 1].clone();
            chain.link_mut(i).attach_tap(tap);
        }
    }

    // The source dials the reporter and leaks the story.
    net.dial(source, reporter);
    net.run_dialing_round();
    net.accept_all_invitations();
    net.queue_message(
        source,
        reporter,
        b"meet tomorrow. documents attached rounds 2-9.",
    );
    net.run_conversation_round();

    assert_eq!(net.received(reporter).len(), 1);
    println!("reporter received the message.\n");

    // ---- Audit the adversary's view. ----
    println!("adversary's captured view, link by link:");
    for (i, tap) in taps.iter().enumerate() {
        let guard = tap.lock();
        for (ctx, batch) in &guard.observations {
            let sizes: std::collections::BTreeSet<usize> = batch.iter().map(Vec::len).collect();
            println!(
                "  link {} [{}] round {} {:?}: {} ciphertexts, distinct sizes {:?}",
                i,
                ctx.link,
                ctx.round,
                ctx.direction,
                batch.len(),
                sizes
            );
        }
    }

    println!(
        "\nevery batch is uniform-size ciphertext; the bystander's fake request\n\
         is bit-for-bit indistinguishable from the source's real one."
    );

    // The only leak: the noised (m1, m2) histogram, bounded by DP.
    let (_, obs) = net.chain().conversation_observables()[0];
    let dist = net.chain().config().conversation_noise;
    let round = conversation_round(dist.mu, dist.b);
    println!(
        "\nlast-server histogram: m1={}, m2={} (noise µ={} per server)",
        obs.m1, obs.m2, dist.mu
    );
    println!(
        "per-round guarantee at this toy µ: ε={:.3}, δ={:.2e}",
        round.epsilon, round.delta
    );
    for prior in [0.1, 0.5, 0.9] {
        println!(
            "  adversary prior {:>4.0}% that source↔reporter are talking → posterior ≤ {:.1}%",
            prior * 100.0,
            posterior_bound(prior, round.epsilon) * 100.0
        );
    }
    println!(
        "\n(production parameters µ=300,000, b=13,800 give ε'=ln 2 over 250,000\n\
         messages — the reporter and source are covered for years of contact.)"
    );
}
