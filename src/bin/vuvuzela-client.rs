//! The scripted client driver of a deployment: replays the schedule
//! against a live entry and writes the resulting transcript.
//!
//! ```text
//! vuvuzela-client --config deploy.json --out transcript.txt [--pipeline <depth>]
//! ```
//!
//! `--pipeline` sets the admission-window depth: how many rounds the
//! driver keeps in flight at once (default 1, i.e. strictly
//! sequential; clamped to the chain length). The transcript is
//! byte-identical at every depth.

use std::path::PathBuf;
use std::process::ExitCode;
use vuvuzela::crypto::sha256::sha256;
use vuvuzela::deploy;
use vuvuzela::sim::transcript::hex;

fn parse_args() -> Result<(PathBuf, Option<PathBuf>, usize), String> {
    let mut config = None;
    let mut out = None;
    let mut pipeline = 1;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => config = Some(PathBuf::from(args.next().ok_or("--config needs a path")?)),
            "--out" => out = Some(PathBuf::from(args.next().ok_or("--out needs a path")?)),
            "--pipeline" => {
                pipeline = args
                    .next()
                    .ok_or("--pipeline needs a window depth")?
                    .parse::<usize>()
                    .map_err(|err| format!("--pipeline: {err}"))?;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok((
        config.ok_or(
            "usage: vuvuzela-client --config <deploy.json> \
             [--out <transcript.txt>] [--pipeline <depth>]",
        )?,
        out,
        pipeline,
    ))
}

fn run() -> Result<(), String> {
    let (config_path, out, pipeline) = parse_args()?;
    let cfg = deploy::load_config(&config_path)?;
    let transcript = deploy::run_client_tcp(&cfg, pipeline).map_err(|err| err.to_string())?;
    match out {
        Some(path) => std::fs::write(&path, &transcript)
            .map_err(|err| format!("cannot write {}: {err}", path.display()))?,
        None => print!("{transcript}"),
    }
    println!(
        "vuvuzela-client: {} rounds, transcript sha256 {}",
        cfg.schedule.len(),
        hex(&sha256(transcript.as_bytes()))
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("vuvuzela-client: {err}");
            ExitCode::FAILURE
        }
    }
}
