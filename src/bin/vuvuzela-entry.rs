//! The untrusted entry server of a deployment, as its own OS process.
//!
//! ```text
//! vuvuzela-entry --config deploy.json
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use vuvuzela::deploy;

fn parse_args() -> Result<PathBuf, String> {
    let mut config = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => config = Some(PathBuf::from(args.next().ok_or("--config needs a path")?)),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    config.ok_or_else(|| "usage: vuvuzela-entry --config <deploy.json>".to_string())
}

fn run() -> Result<(), String> {
    let cfg = deploy::load_config(&parse_args()?)?;
    let stats = deploy::serve_entry(&cfg).map_err(|err| err.to_string())?;
    println!(
        "vuvuzela-entry: done ({} conversation, {} dialing rounds)",
        stats.conversation_rounds, stats.dialing_rounds
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("vuvuzela-entry: {err}");
            ExitCode::FAILURE
        }
    }
}
