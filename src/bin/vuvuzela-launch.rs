//! Launches one deployment as separate OS processes on this box and
//! (optionally) diffs its transcript against the in-process reference.
//!
//! ```text
//! vuvuzela-launch --config deploy.json --check --out-dir target/deploy-out \
//!     [--pipeline <depth>]
//! ```
//!
//! `--pipeline <depth>` additionally runs a second process set whose
//! client keeps `depth` rounds in flight (clamped to the chain
//! length); its transcript must match the sequential run round for
//! round, and `--check` also diffs it against the in-process
//! reference.
//!
//! With no `--config`, a built-in smoke deployment (3 servers,
//! ephemeral loopback ports, a mixed 4-round schedule) is used.
//! `--dump-config` prints that deployment as JSON and exits — use it as
//! a starting point for your own deployment files.

use std::path::PathBuf;
use std::process::ExitCode;
use vuvuzela::deploy::{self, LaunchOptions};

struct Args {
    config: Option<PathBuf>,
    check: bool,
    dump_config: bool,
    out_dir: PathBuf,
    bin_dir: Option<PathBuf>,
    pipeline: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        config: None,
        check: false,
        dump_config: false,
        out_dir: PathBuf::from("target/deploy-out"),
        bin_dir: None,
        pipeline: 1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => {
                parsed.config = Some(PathBuf::from(args.next().ok_or("--config needs a path")?));
            }
            "--check" => parsed.check = true,
            "--dump-config" => parsed.dump_config = true,
            "--out-dir" => {
                parsed.out_dir = PathBuf::from(args.next().ok_or("--out-dir needs a path")?);
            }
            "--bin-dir" => {
                parsed.bin_dir = Some(PathBuf::from(args.next().ok_or("--bin-dir needs a path")?));
            }
            "--pipeline" => {
                parsed.pipeline = args
                    .next()
                    .ok_or("--pipeline needs a window depth")?
                    .parse::<usize>()
                    .map_err(|err| format!("--pipeline: {err}"))?;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(parsed)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let cfg = match &args.config {
        Some(path) => deploy::load_config(path)?,
        None => deploy::smoke_config(),
    };
    if args.dump_config {
        let rendered = vuvuzela::serde_json::to_string_pretty(&cfg.to_json())
            .map_err(|err| format!("render config: {err}"))?;
        println!("{rendered}");
        return Ok(());
    }
    let rounds = cfg.schedule.len();
    let report = deploy::launch(
        cfg,
        &LaunchOptions {
            check: args.check,
            out_dir: args.out_dir.clone(),
            bin_dir: args.bin_dir,
            pipeline: args.pipeline,
        },
    )?;
    println!(
        "vuvuzela-launch: {rounds} rounds over loopback TCP in {:.3}s ({:.2} rounds/s, informational)",
        report.distributed_secs,
        rounds as f64 / report.distributed_secs.max(1e-9)
    );
    if let Some(secs) = report.pipelined_secs {
        println!(
            "vuvuzela-launch: pipelined (depth {}) run took {secs:.3}s ({:.2} rounds/s, \
             informational; round-for-round identical to the sequential run)",
            report.pipeline_depth,
            rounds as f64 / secs.max(1e-9)
        );
    }
    if let Some(secs) = report.reference_secs {
        println!(
            "vuvuzela-launch: in-process reference took {secs:.3}s; transcripts are byte-identical"
        );
    }
    println!("vuvuzela-launch: artefacts in {}", args.out_dir.display());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("vuvuzela-launch: {err}");
            ExitCode::FAILURE
        }
    }
}
