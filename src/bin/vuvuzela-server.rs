//! One mix server of a deployment, as its own OS process.
//!
//! ```text
//! vuvuzela-server --config deploy.json --position 1
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use vuvuzela::deploy;

fn parse_args() -> Result<(PathBuf, usize), String> {
    let mut config = None;
    let mut position = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => config = Some(PathBuf::from(args.next().ok_or("--config needs a path")?)),
            "--position" => {
                position = Some(
                    args.next()
                        .ok_or("--position needs a chain index")?
                        .parse::<usize>()
                        .map_err(|err| format!("--position: {err}"))?,
                );
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok((
        config.ok_or("usage: vuvuzela-server --config <deploy.json> --position <i>")?,
        position.ok_or("usage: vuvuzela-server --config <deploy.json> --position <i>")?,
    ))
}

fn run() -> Result<(), String> {
    let (config_path, position) = parse_args()?;
    let cfg = deploy::load_config(&config_path)?;
    if position >= cfg.system.chain_len {
        return Err(format!(
            "position {position} out of range for a {}-server chain",
            cfg.system.chain_len
        ));
    }
    let stats = deploy::serve_server(&cfg, position).map_err(|err| err.to_string())?;
    println!(
        "vuvuzela-server {position}: done ({} conversation, {} dialing rounds)",
        stats.conversation_rounds, stats.dialing_rounds
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("vuvuzela-server: {err}");
            ExitCode::FAILURE
        }
    }
}
