//! Real-deployment plumbing for the `vuvuzela-*` bins.
//!
//! A deployment is described by one JSON file ([`DeploymentConfig`]):
//! the shared [`SystemConfig`], the chain seed, one TCP address per
//! node, and a scripted round schedule. Every process loads the same
//! file; the framed-TCP handshake carries a SHA-256 digest of its
//! canonical rendering, so two processes started with different configs
//! fail at connect time instead of corrupting a round.
//!
//! The schedule is replayed by a *deterministic* client driver: every
//! batch is a pure function of `(seed, round)`, so the distributed run
//! (`vuvuzela-launch`: entry + servers + client as separate OS
//! processes over loopback TCP) and the in-process reference
//! ([`run_reference`], the sequential [`Chain`]) must produce
//! **byte-identical transcripts** — replies, dead-drop histograms and
//! dialing counts included. `vuvuzela-launch --check` asserts exactly
//! that, and CI runs it on every push.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::VecDeque;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde_json::{json, Value};
use vuvuzela_core::chain::{build_server, server_keypairs, Chain};
use vuvuzela_core::config::{expect_object, get_u64, reject_unknown, require};
use vuvuzela_core::engine::{admission_weights, AdmissionWindow};
use vuvuzela_core::node::{run_entry_node, run_server_node, NodeStats, RoundTrailer};
use vuvuzela_core::observables::{ConversationObservables, DialingObservables};
use vuvuzela_core::server::RoundKind;
use vuvuzela_core::SystemConfig;
use vuvuzela_crypto::onion::{self, LayerKey};
use vuvuzela_crypto::sha256::{sha256, Sha256};
use vuvuzela_crypto::x25519::{Keypair, PublicKey};
use vuvuzela_net::{Error, LinkId, RetryPolicy, TcpTransport, Transport};
use vuvuzela_sim::transcript::{hex, Transcript};
use vuvuzela_wire::conversation::ExchangeRequest;
use vuvuzela_wire::deaddrop::DeadDropId;
use vuvuzela_wire::dialing::{DialRequest, SealedInvitation};
use vuvuzela_wire::{BatchFrame, Frame, RoundId, RoundType, SEALED_MESSAGE_LEN};

/// Default for [`DeploymentConfig::connect_timeout_ms`]: deployment
/// processes start in arbitrary order, so peers retry refused
/// connections this long before giving up.
pub const DEFAULT_CONNECT_TIMEOUT_MS: u64 = 30_000;

/// Domain separator for the client driver's per-round batch RNG,
/// keeping it disjoint from the chain- and server-level streams.
const CLIENT_RNG_DOMAIN: u64 = 0xC11E_47B0_0000_0000;

/// One scripted round of a deployment schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleEntry {
    /// A conversation round: `pairs` client pairs exchanging through
    /// shared dead drops plus `singles` lone requests.
    Conversation {
        /// Client pairs that complete a real exchange.
        pairs: u32,
        /// Lone clients whose requests meet no partner.
        singles: u32,
    },
    /// A dialing round: `dials` real invitations into `drops` drops.
    Dialing {
        /// Real invitations sent.
        dials: u32,
        /// Invitation dead drops this round (§5.4's `m`).
        drops: u32,
    },
}

impl ScheduleEntry {
    fn to_json(self) -> Value {
        match self {
            ScheduleEntry::Conversation { pairs, singles } => json!({
                "type": "conversation",
                "pairs": pairs,
                "singles": singles,
            }),
            ScheduleEntry::Dialing { dials, drops } => json!({
                "type": "dialing",
                "dials": dials,
                "drops": drops,
            }),
        }
    }

    fn from_json(value: &Value) -> Result<ScheduleEntry, String> {
        let map = expect_object(value, "schedule entry")?;
        match require(map, "type")?.as_str() {
            Some("conversation") => {
                reject_unknown(map, &["type", "pairs", "singles"], "conversation entry")?;
                Ok(ScheduleEntry::Conversation {
                    pairs: get_u64(map, "pairs")? as u32,
                    singles: get_u64(map, "singles")? as u32,
                })
            }
            Some("dialing") => {
                reject_unknown(map, &["type", "dials", "drops"], "dialing entry")?;
                Ok(ScheduleEntry::Dialing {
                    dials: get_u64(map, "dials")? as u32,
                    drops: get_u64(map, "drops")? as u32,
                })
            }
            Some(other) => Err(format!("unknown schedule entry type {other:?}")),
            None => Err("schedule entry type must be a string".to_string()),
        }
    }
}

/// Everything the `vuvuzela-*` bins need to run one deployment.
#[derive(Clone, Debug)]
pub struct DeploymentConfig {
    /// The protocol parameters every node shares.
    pub system: SystemConfig,
    /// Chain seed: server keys, noise, and the scripted client batches
    /// all derive from it.
    pub seed: u64,
    /// TCP address the entry listens on for the client driver.
    pub entry_addr: String,
    /// TCP address each mix server listens on for its upstream peer
    /// (`server_addrs[i]` is server *i*; must match
    /// `system.chain_len`). A `:0` port is resolved to a free one by
    /// [`resolve_ephemeral_ports`].
    pub server_addrs: Vec<String>,
    /// The scripted rounds, replayed in order as rounds `0..n`.
    pub schedule: Vec<ScheduleEntry>,
    /// How long (milliseconds) connecting processes retry a refused
    /// connection before giving up; retries back off exponentially with
    /// per-link jitter. Optional in the JSON file, defaulting to
    /// [`DEFAULT_CONNECT_TIMEOUT_MS`].
    pub connect_timeout_ms: u64,
}

impl DeploymentConfig {
    /// Serializes to the deployment-file JSON shape.
    #[must_use]
    pub fn to_json(&self) -> Value {
        json!({
            "system": self.system.to_json(),
            "seed": self.seed,
            "entry_addr": self.entry_addr.clone(),
            "server_addrs": self.server_addrs.clone(),
            "schedule": self.schedule.iter().map(|e| e.to_json()).collect::<Vec<Value>>(),
            "connect_timeout_ms": self.connect_timeout_ms,
        })
    }

    /// Deserializes a deployment file, rejecting unknown fields at
    /// every level.
    ///
    /// # Errors
    ///
    /// A description of the first missing, unknown, or ill-typed field.
    pub fn from_json(value: &Value) -> Result<DeploymentConfig, String> {
        let map = expect_object(value, "deployment config")?;
        reject_unknown(
            map,
            &[
                "system",
                "seed",
                "entry_addr",
                "server_addrs",
                "schedule",
                "connect_timeout_ms",
            ],
            "deployment config",
        )?;
        let system = SystemConfig::from_json(require(map, "system")?)?;
        let entry_addr = require(map, "entry_addr")?
            .as_str()
            .ok_or("entry_addr must be a string")?
            .to_string();
        let server_addrs = match require(map, "server_addrs")? {
            Value::Array(addrs) => addrs
                .iter()
                .map(|addr| {
                    addr.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "server_addrs entries must be strings".to_string())
                })
                .collect::<Result<Vec<String>, String>>()?,
            _ => return Err("server_addrs must be an array".to_string()),
        };
        if server_addrs.len() != system.chain_len {
            return Err(format!(
                "server_addrs has {} entries but chain_len is {}",
                server_addrs.len(),
                system.chain_len
            ));
        }
        let schedule = match require(map, "schedule")? {
            Value::Array(entries) => entries
                .iter()
                .map(ScheduleEntry::from_json)
                .collect::<Result<Vec<ScheduleEntry>, String>>()?,
            _ => return Err("schedule must be an array".to_string()),
        };
        let connect_timeout_ms = match map.get("connect_timeout_ms") {
            Some(value) => value
                .as_u64()
                .ok_or("field \"connect_timeout_ms\" must be a non-negative integer")?,
            None => DEFAULT_CONNECT_TIMEOUT_MS,
        };
        Ok(DeploymentConfig {
            system,
            seed: get_u64(map, "seed")?,
            entry_addr,
            server_addrs,
            schedule,
            connect_timeout_ms,
        })
    }

    /// The SHA-256 digest of the canonical config rendering, exchanged
    /// in every TCP handshake so mismatched processes fail fast.
    #[must_use]
    pub fn digest(&self) -> [u8; 32] {
        let rendered = serde_json::to_string_pretty(&self.to_json())
            .expect("deployment config always renders");
        sha256(rendered.as_bytes())
    }

    /// The connect-retry policy every process in this deployment uses:
    /// jittered exponential backoff up to the configured deadline.
    #[must_use]
    pub fn connect_retry(&self) -> RetryPolicy {
        RetryPolicy::with_deadline(Duration::from_millis(self.connect_timeout_ms))
    }

    /// The chain's public keys, derived from `(chain_len, seed)` just
    /// like every server derives its own secret.
    #[must_use]
    pub fn server_public_keys(&self) -> Vec<PublicKey> {
        server_keypairs(self.system.chain_len, self.seed)
            .iter()
            .map(|kp| kp.public)
            .collect()
    }
}

/// Loads and strictly parses a deployment file.
///
/// # Errors
///
/// IO failures and parse errors, rendered with the offending path.
pub fn load_config(path: &Path) -> Result<DeploymentConfig, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|err| format!("cannot read {}: {err}", path.display()))?;
    let value = serde_json::from_str(&text)
        .map_err(|err| format!("{} is not valid JSON: {err}", path.display()))?;
    DeploymentConfig::from_json(&value).map_err(|err| format!("{}: {err}", path.display()))
}

/// One scripted round's client-side state: the onions fed in, and what
/// is needed to verify the replies.
pub struct ClientRound {
    /// Request onions, in feed order.
    pub onions: Vec<Vec<u8>>,
    /// Reply-layer keys per onion (conversation rounds only).
    pub keys: Vec<Vec<LayerKey>>,
    /// `pair_of[i] = Some(j)` when onions `i` and `j` share a dead drop.
    pub pair_of: Vec<Option<usize>>,
    /// The sealed message each conversation onion deposited.
    pub messages: Vec<Vec<u8>>,
}

/// Builds round `round`'s client batch — a pure function of the config
/// seed and the round number, so the distributed client driver and the
/// in-process reference feed byte-identical onions.
#[must_use]
pub fn build_client_round(cfg: &DeploymentConfig, pks: &[PublicKey], round: u64) -> ClientRound {
    let mut rng = StdRng::seed_from_u64((cfg.seed ^ CLIENT_RNG_DOMAIN).wrapping_add(round));
    let mut data = ClientRound {
        onions: Vec::new(),
        keys: Vec::new(),
        pair_of: Vec::new(),
        messages: Vec::new(),
    };
    let push_exchange = |rng: &mut StdRng, data: &mut ClientRound, drop: DeadDropId| {
        let mut sealed_message = vec![0u8; SEALED_MESSAGE_LEN];
        rng.fill_bytes(&mut sealed_message);
        let request = ExchangeRequest {
            drop,
            sealed_message: sealed_message.clone(),
        };
        let (onion, keys) = onion::wrap(rng, pks, round, &request.encode());
        data.onions.push(onion);
        data.keys.push(keys);
        data.messages.push(sealed_message);
    };
    match cfg.schedule[round as usize] {
        ScheduleEntry::Conversation { pairs, singles } => {
            for pair in 0..pairs {
                let mut id = [0u8; 16];
                rng.fill_bytes(&mut id);
                let drop = DeadDropId(id);
                push_exchange(&mut rng, &mut data, drop);
                push_exchange(&mut rng, &mut data, drop);
                let base = 2 * pair as usize;
                data.pair_of.push(Some(base + 1));
                data.pair_of.push(Some(base));
            }
            for _ in 0..singles {
                let mut id = [0u8; 16];
                rng.fill_bytes(&mut id);
                push_exchange(&mut rng, &mut data, DeadDropId(id));
                data.pair_of.push(None);
            }
        }
        ScheduleEntry::Dialing { dials, drops } => {
            for _ in 0..dials {
                let caller = Keypair::generate(&mut rng);
                let callee = Keypair::generate(&mut rng);
                let request = DialRequest {
                    drop: vuvuzela_wire::deaddrop::InvitationDropIndex::for_recipient(
                        &callee.public,
                        drops,
                    ),
                    invitation: SealedInvitation::seal(&mut rng, &caller.public, &callee.public),
                };
                let (onion, _) = onion::wrap(&mut rng, pks, round, &request.encode());
                data.onions.push(onion);
                data.pair_of.push(None);
            }
        }
    }
    data
}

/// Counts the paired exchanges whose replies decrypt to the partner's
/// sealed message — the end-to-end correctness check of a round.
fn verify_pairs(data: &ClientRound, round: u64, replies: &[Vec<u8>]) -> usize {
    data.pair_of
        .iter()
        .enumerate()
        .filter(|&(i, &pair)| {
            pair.is_some_and(|j| {
                i < replies.len()
                    && onion::unwrap_reply_layers(&data.keys[i], round, &replies[i])
                        .is_ok_and(|plain| plain == data.messages[j])
            })
        })
        .count()
}

fn transcript_header(cfg: &DeploymentConfig) -> Transcript {
    let mut transcript = Transcript::new();
    transcript.push(format!(
        "deploy digest {} seed {} chain {} rounds {}",
        hex(&cfg.digest()),
        cfg.seed,
        cfg.system.chain_len,
        cfg.schedule.len()
    ));
    transcript
}

fn transcribe_conversation(
    transcript: &mut Transcript,
    round: u64,
    data: &ClientRound,
    replies: &[Vec<u8>],
    obs: ConversationObservables,
) {
    let mut hasher = Sha256::new();
    for reply in replies {
        hasher.update(reply);
    }
    transcript.push(format!(
        "round {round} conversation clients {} replies {} sha256 {} verified {}",
        data.onions.len(),
        replies.len(),
        hex(&hasher.finalize()),
        verify_pairs(data, round, replies)
    ));
    transcript.push(format!(
        "round {round} obs m1 {} m2 {} m_many {} total {}",
        obs.m1, obs.m2, obs.m_many, obs.total_requests
    ));
}

fn transcribe_dialing(
    transcript: &mut Transcript,
    round: u64,
    data: &ClientRound,
    drops: u32,
    obs: &DialingObservables,
) {
    transcript.push(format!(
        "round {round} dialing clients {} drops {drops} counts {:?} noop {}",
        data.onions.len(),
        obs.counts,
        obs.noop_writes
    ));
}

/// Replays the schedule on the in-process sequential [`Chain`] — the
/// reference transcript every distributed run is diffed against.
#[must_use]
pub fn run_reference(cfg: &DeploymentConfig) -> String {
    let mut chain = Chain::new(cfg.system.clone(), cfg.seed);
    let pks = chain.server_public_keys();
    let mut transcript = transcript_header(cfg);
    for (index, entry) in cfg.schedule.iter().enumerate() {
        let round = index as u64;
        let data = build_client_round(cfg, &pks, round);
        match *entry {
            ScheduleEntry::Conversation { .. } => {
                let (replies, _) = chain.run_conversation_round(round, data.onions.clone());
                let (_, obs) = *chain
                    .conversation_observables()
                    .last()
                    .expect("round just ran");
                transcribe_conversation(&mut transcript, round, &data, &replies, obs);
            }
            ScheduleEntry::Dialing { drops, .. } => {
                chain.run_dialing_round(round, data.onions.clone(), drops);
                let (_, obs) = chain.dialing_observables().last().expect("round just ran");
                let obs = obs.clone();
                transcribe_dialing(&mut transcript, round, &data, drops, &obs);
            }
        }
    }
    transcript.push(format!("end rounds {}", cfg.schedule.len()));
    transcript.render()
}

fn protocol(link: LinkId, reason: String) -> Error {
    Error::Protocol { link, reason }
}

/// One in-flight round on the client side: what was fed in, kept until
/// its backward frame is collected.
struct InFlightRound {
    round: u64,
    data: ClientRound,
    num_drops: u32,
}

/// Receives the backward frame of the *oldest* in-flight round —
/// backward frames return in admission order, so anything else is a
/// protocol violation — and appends its transcript lines.
fn collect_reply(
    entry: &dyn Transport,
    pending: &mut VecDeque<InFlightRound>,
    window: &mut AdmissionWindow,
    transcript: &mut Transcript,
) -> Result<(), Error> {
    let link = entry.link_id();
    let InFlightRound {
        round,
        data,
        num_drops,
    } = pending.pop_front().expect("collect with a round in flight");
    let back = match entry.recv()? {
        Frame::Batch(back) if back.backward && back.round.0 == round => back,
        other => {
            return Err(protocol(
                link,
                format!("expected the backward frame of round {round}, got {other:?}"),
            ))
        }
    };
    let trailer = RoundTrailer::decode(&back.trailer)
        .map_err(|reason| protocol(link, format!("round {round}: {reason}")))?;
    match (back.round_type, trailer) {
        (RoundType::Conversation, RoundTrailer::Conversation(obs)) => {
            let stride = back.stride as usize;
            let replies: Vec<Vec<u8>> = back
                .payload
                .chunks(stride.max(1))
                .map(|chunk| chunk[..back.width as usize].to_vec())
                .collect();
            transcribe_conversation(transcript, round, &data, &replies, obs);
        }
        (RoundType::Dialing, RoundTrailer::Dialing(obs)) => {
            transcribe_dialing(transcript, round, &data, num_drops, &obs);
        }
        (round_type, _) => {
            return Err(protocol(
                link,
                format!("round {round}: trailer does not match round type {round_type:?}"),
            ))
        }
    }
    window
        .complete(round)
        .expect("collected round was admitted");
    Ok(())
}

/// Replays the schedule against a live entry over any [`Transport`]
/// (the TCP client bin, or in-memory endpoints in tests) and builds the
/// client-side transcript.
///
/// `depth` is the admission-window size in weighted slots (clamped to
/// `1..=chain_len`, the entry's own window): with `depth == 1` rounds
/// run strictly sequentially; deeper windows keep several rounds in
/// flight, priced by [`admission_weights`] so heavyweight rounds
/// consume more of the window. Backward frames return in admission
/// order and rounds are transcribed as they are collected, so the
/// transcript is byte-identical at every depth.
///
/// # Errors
///
/// Transport failures, or [`Error::Protocol`] when the chain answers
/// out of protocol (wrong round, malformed trailer, bad geometry).
pub fn run_client(
    cfg: &DeploymentConfig,
    entry: &dyn Transport,
    depth: usize,
) -> Result<String, Error> {
    let depth = depth.clamp(1, cfg.system.chain_len.max(1));
    let pks = cfg.server_public_keys();
    let link = entry.link_id();
    let mut transcript = transcript_header(cfg);
    let round_shapes: Vec<(RoundKind, usize)> = cfg
        .schedule
        .iter()
        .map(|sched| match *sched {
            ScheduleEntry::Conversation { pairs, singles } => {
                (RoundKind::Conversation, (2 * pairs + singles) as usize)
            }
            ScheduleEntry::Dialing { dials, drops } => {
                (RoundKind::Dialing { num_drops: drops }, dials as usize)
            }
        })
        .collect();
    let weights = admission_weights(&cfg.system, depth, &round_shapes);
    let mut window = AdmissionWindow::new(depth);
    let mut pending: VecDeque<InFlightRound> = VecDeque::new();

    for (index, sched) in cfg.schedule.iter().enumerate() {
        let round = index as u64;
        let weight = weights[index];
        while window.would_block(weight) {
            collect_reply(entry, &mut pending, &mut window, &mut transcript)?;
        }
        let data = build_client_round(cfg, &pks, round);
        let (round_type, num_drops, kind) = match *sched {
            ScheduleEntry::Conversation { .. } => {
                (RoundType::Conversation, 0, RoundKind::Conversation)
            }
            ScheduleEntry::Dialing { drops, .. } => (
                RoundType::Dialing,
                drops,
                RoundKind::Dialing { num_drops: drops },
            ),
        };
        let width = onion::wrapped_len(kind.payload_len(), cfg.system.chain_len);
        entry.send(Frame::Batch(BatchFrame {
            link,
            round: RoundId(round),
            round_type,
            num_drops,
            backward: false,
            stride: width as u32,
            width: width as u32,
            count: data.onions.len() as u32,
            payload: data.onions.concat(),
            trailer: Vec::new(),
        }))?;
        window.admit(round, weight);
        pending.push_back(InFlightRound {
            round,
            data,
            num_drops,
        });
    }
    while !pending.is_empty() {
        collect_reply(entry, &mut pending, &mut window, &mut transcript)?;
    }
    entry.send(Frame::Bye)?;
    transcript.push(format!("end rounds {}", cfg.schedule.len()));
    Ok(transcript.render())
}

/// Runs mix server `position` over TCP: bind the upstream listener,
/// connect downstream (retrying while peers start up), accept the
/// upstream peer, then hand the connections to the node runtime.
///
/// # Errors
///
/// Bind/connect/handshake failures and any protocol violation from
/// [`run_server_node`].
pub fn serve_server(cfg: &DeploymentConfig, position: usize) -> Result<NodeStats, Error> {
    let digest = cfg.digest();
    let retry = cfg.connect_retry();
    let upstream_link = LinkId::Hop(position as u32);
    let listener = TcpListener::bind(&cfg.server_addrs[position]).map_err(|source| Error::Io {
        link: upstream_link,
        op: "bind",
        source,
    })?;
    let downstream: Option<Arc<dyn Transport>> = if position + 1 < cfg.system.chain_len {
        Some(Arc::new(TcpTransport::connect(
            cfg.server_addrs[position + 1].as_str(),
            LinkId::Hop(position as u32 + 1),
            digest,
            &retry,
        )?))
    } else {
        None
    };
    let upstream: Arc<dyn Transport> =
        Arc::new(TcpTransport::accept(&listener, upstream_link, digest)?);
    let server = build_server(&cfg.system, cfg.seed, position);
    run_server_node(server, &cfg.system, cfg.seed, upstream, downstream)
}

/// Runs the entry over TCP: bind the client listener, connect to
/// server 0, accept the client driver, relay rounds until its
/// [`Frame::Bye`].
///
/// # Errors
///
/// Bind/connect/handshake failures and any protocol violation from
/// [`run_entry_node`].
pub fn serve_entry(cfg: &DeploymentConfig) -> Result<NodeStats, Error> {
    let digest = cfg.digest();
    let listener = TcpListener::bind(&cfg.entry_addr).map_err(|source| Error::Io {
        link: LinkId::Clients,
        op: "bind",
        source,
    })?;
    let downstream: Arc<dyn Transport> = Arc::new(TcpTransport::connect(
        cfg.server_addrs[0].as_str(),
        LinkId::Hop(0),
        digest,
        &cfg.connect_retry(),
    )?);
    let clients: Arc<dyn Transport> =
        Arc::new(TcpTransport::accept(&listener, LinkId::Clients, digest)?);
    run_entry_node(&cfg.system, clients, downstream)
}

/// Runs the scripted client driver over TCP against a live entry, with
/// a `depth`-round admission window (see [`run_client`]).
///
/// # Errors
///
/// Connect/handshake failures and any protocol violation from
/// [`run_client`].
pub fn run_client_tcp(cfg: &DeploymentConfig, depth: usize) -> Result<String, Error> {
    let entry = TcpTransport::connect(
        cfg.entry_addr.as_str(),
        LinkId::Clients,
        cfg.digest(),
        &cfg.connect_retry(),
    )?;
    run_client(cfg, &entry, depth)
}

/// Rewrites every `:0` address to a concrete free loopback port
/// (pre-binding a listener to discover one), so one deployment file can
/// say "any free port" and all processes still agree.
///
/// # Errors
///
/// Bind failures while probing for free ports.
pub fn resolve_ephemeral_ports(cfg: &mut DeploymentConfig) -> Result<(), String> {
    let resolve = |addr: &mut String| -> Result<(), String> {
        if addr.ends_with(":0") {
            let listener = TcpListener::bind(addr.as_str())
                .map_err(|err| format!("cannot probe a free port on {addr}: {err}"))?;
            *addr = listener
                .local_addr()
                .map_err(|err| format!("no local addr for {addr}: {err}"))?
                .to_string();
        }
        Ok(())
    };
    resolve(&mut cfg.entry_addr)?;
    for addr in &mut cfg.server_addrs {
        resolve(addr)?;
    }
    Ok(())
}

/// Options for [`launch`].
pub struct LaunchOptions {
    /// Also run the in-process reference and fail on any transcript
    /// difference (for the pipelined run too, when `pipeline > 1`).
    pub check: bool,
    /// Where transcripts, the resolved config, and the bench artefact
    /// are written.
    pub out_dir: PathBuf,
    /// Directory holding the `vuvuzela-server` / `vuvuzela-entry` /
    /// `vuvuzela-client` bins; defaults to the launcher's own
    /// directory.
    pub bin_dir: Option<PathBuf>,
    /// Client admission-window depth for an *additional* pipelined
    /// process set run after the sequential one (clamped to
    /// `1..=chain_len`); `0` or `1` means sequential only.
    pub pipeline: usize,
}

/// What [`launch`] produced.
pub struct LaunchReport {
    /// The distributed run's transcript (also written to
    /// `distributed.txt`).
    pub distributed: String,
    /// The reference transcript, when `--check` ran.
    pub reference: Option<String>,
    /// Wall-clock seconds of the distributed run (client connect →
    /// transcript complete; includes process startup).
    pub distributed_secs: f64,
    /// Wall-clock seconds of the in-process reference run.
    pub reference_secs: Option<f64>,
    /// The pipelined run's transcript (also written to
    /// `distributed_pipelined.txt`), when `pipeline > 1`.
    pub pipelined: Option<String>,
    /// Wall-clock seconds of the pipelined run.
    pub pipelined_secs: Option<f64>,
    /// The clamped window depth the pipelined run used (1 when no
    /// pipelined run happened).
    pub pipeline_depth: usize,
}

fn kill_all(children: &mut [(String, Child)]) {
    for (_, child) in children.iter_mut() {
        let _ = child.kill();
        let _ = child.wait();
    }
}

/// Spawns one full process set — servers tail-to-head, entry, client —
/// against `resolved_path`, waits for every process, and returns the
/// client transcript plus the wall-clock seconds of the whole run.
fn run_process_set(
    cfg: &DeploymentConfig,
    bin: &dyn Fn(&str) -> PathBuf,
    resolved_path: &Path,
    transcript_path: &Path,
    depth: usize,
) -> Result<(String, f64), String> {
    let started = Instant::now();
    let mut children: Vec<(String, Child)> = Vec::new();
    let spawn = |children: &mut Vec<(String, Child)>,
                 name: String,
                 command: &mut Command|
     -> Result<(), String> {
        match command.spawn() {
            Ok(child) => {
                children.push((name, child));
                Ok(())
            }
            Err(err) => {
                kill_all(children);
                Err(format!("cannot spawn {name}: {err}"))
            }
        }
    };
    // Servers first (tail to head so downstream listeners exist early,
    // although the connect retry loop tolerates any order), then the
    // entry, then the client driver.
    for position in (0..cfg.system.chain_len).rev() {
        spawn(
            &mut children,
            format!("vuvuzela-server {position}"),
            Command::new(bin("vuvuzela-server"))
                .arg("--config")
                .arg(resolved_path)
                .arg("--position")
                .arg(position.to_string()),
        )?;
    }
    spawn(
        &mut children,
        "vuvuzela-entry".to_string(),
        Command::new(bin("vuvuzela-entry"))
            .arg("--config")
            .arg(resolved_path),
    )?;
    let mut client = Command::new(bin("vuvuzela-client"));
    client
        .arg("--config")
        .arg(resolved_path)
        .arg("--out")
        .arg(transcript_path);
    if depth > 1 {
        client.arg("--pipeline").arg(depth.to_string());
    }
    spawn(&mut children, "vuvuzela-client".to_string(), &mut client)?;

    let mut failure = None;
    for (name, child) in &mut children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                failure = Some(format!("{name} exited with {status}"));
                break;
            }
            Err(err) => {
                failure = Some(format!("cannot wait for {name}: {err}"));
                break;
            }
        }
    }
    if let Some(failure) = failure {
        kill_all(&mut children);
        return Err(failure);
    }
    let secs = started.elapsed().as_secs_f64();
    let transcript = std::fs::read_to_string(transcript_path).map_err(|err| {
        format!(
            "client wrote no transcript at {}: {err}",
            transcript_path.display()
        )
    })?;
    Ok((transcript, secs))
}

/// Strips the transcript header (whose digest covers the deployment's
/// concrete addresses) so runs on different ports remain comparable.
fn transcript_body(transcript: &str) -> &str {
    transcript
        .split_once('\n')
        .map_or(transcript, |(_, body)| body)
}

/// Launches one deployment as separate OS processes — `chain_len`
/// `vuvuzela-server`s, one `vuvuzela-entry`, one `vuvuzela-client` —
/// replays the schedule, and writes `distributed.txt`,
/// `reference.txt` (with `check`), `resolved.json` and
/// `BENCH_wire_chain.json` into the out dir.
///
/// With `pipeline > 1` a second process set replays the same schedule
/// with a pipelined client window (`distributed_pipelined.txt`). Its
/// `:0` addresses are re-resolved to fresh ports — rebinding the
/// sequential run's listeners immediately can trip over `TIME_WAIT` —
/// so its transcript header carries a different config digest; the
/// body (every round line) must still match the sequential run
/// byte-for-byte, and with `check` the pipelined transcript is also
/// diffed in full against its own sequential in-process reference.
///
/// # Errors
///
/// Spawn failures, a non-zero child exit, or (with `check`) a
/// transcript mismatch.
pub fn launch(mut cfg: DeploymentConfig, opts: &LaunchOptions) -> Result<LaunchReport, String> {
    let unresolved = cfg.clone();
    resolve_ephemeral_ports(&mut cfg)?;
    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|err| format!("cannot create {}: {err}", opts.out_dir.display()))?;
    let write_resolved = |name: &str, cfg: &DeploymentConfig| -> Result<PathBuf, String> {
        let path = opts.out_dir.join(name);
        let rendered =
            serde_json::to_string_pretty(&cfg.to_json()).expect("deployment config always renders");
        std::fs::write(&path, rendered + "\n")
            .map_err(|err| format!("cannot write {}: {err}", path.display()))?;
        Ok(path)
    };
    let resolved_path = write_resolved("resolved.json", &cfg)?;

    let bin_dir = match &opts.bin_dir {
        Some(dir) => dir.clone(),
        None => std::env::current_exe()
            .map_err(|err| format!("cannot locate the launcher binary: {err}"))?
            .parent()
            .ok_or("the launcher binary has no parent directory")?
            .to_path_buf(),
    };
    let bin = |name: &str| bin_dir.join(format!("{name}{}", std::env::consts::EXE_SUFFIX));

    let transcript_path = opts.out_dir.join("distributed.txt");
    let (distributed, distributed_secs) =
        run_process_set(&cfg, &bin, &resolved_path, &transcript_path, 1)?;

    let depth = opts.pipeline.clamp(1, cfg.system.chain_len.max(1));
    let pipelined_run = if depth > 1 {
        let mut pcfg = unresolved;
        resolve_ephemeral_ports(&mut pcfg)?;
        let presolved_path = write_resolved("resolved_pipelined.json", &pcfg)?;
        let ptranscript_path = opts.out_dir.join("distributed_pipelined.txt");
        let (transcript, secs) =
            run_process_set(&pcfg, &bin, &presolved_path, &ptranscript_path, depth)?;
        if transcript_body(&transcript) != transcript_body(&distributed) {
            return Err(format!(
                "pipelined transcript body diverged from the sequential run: {} vs {}",
                ptranscript_path.display(),
                transcript_path.display(),
            ));
        }
        Some((pcfg, transcript, secs))
    } else {
        None
    };

    let (reference, reference_secs) = if opts.check {
        let started = Instant::now();
        let reference = run_reference(&cfg);
        let secs = started.elapsed().as_secs_f64();
        let reference_path = opts.out_dir.join("reference.txt");
        std::fs::write(&reference_path, &reference)
            .map_err(|err| format!("cannot write {}: {err}", reference_path.display()))?;
        (Some(reference), Some(secs))
    } else {
        (None, None)
    };

    let rounds = cfg.schedule.len();
    let pipelined_secs = pipelined_run.as_ref().map(|(_, _, secs)| *secs);
    let bench = json!({
        "bench": "wire_chain",
        "rounds": rounds,
        "loopback_multiprocess": {
            "secs": distributed_secs,
            "rounds_per_sec": rounds as f64 / distributed_secs.max(1e-9),
        },
        "pipelined_multiprocess": pipelined_secs.map(|secs| json!({
            "secs": secs,
            "rounds_per_sec": rounds as f64 / secs.max(1e-9),
            "depth": depth,
        })).unwrap_or(Value::Null),
        "speedup_pipelined_wire": pipelined_secs
            .map(|secs| json!(distributed_secs / secs.max(1e-9)))
            .unwrap_or(Value::Null),
        "in_process_reference": reference_secs.map(|secs| json!({
            "secs": secs,
            "rounds_per_sec": rounds as f64 / secs.max(1e-9),
        })).unwrap_or(Value::Null),
        "note": "informational: loopback TCP on a shared-core box, includes process startup; \
                 not a distributed-deployment throughput claim",
    });
    let bench_path = opts.out_dir.join("BENCH_wire_chain.json");
    std::fs::write(
        &bench_path,
        serde_json::to_string_pretty(&bench).expect("bench renders") + "\n",
    )
    .map_err(|err| format!("cannot write {}: {err}", bench_path.display()))?;

    if let Some(reference) = &reference {
        if *reference != distributed {
            return Err(format!(
                "transcript mismatch: {} differs from {} (distributed sha256 {}, reference {})",
                transcript_path.display(),
                opts.out_dir.join("reference.txt").display(),
                hex(&sha256(distributed.as_bytes())),
                hex(&sha256(reference.as_bytes())),
            ));
        }
        if let Some((pcfg, ptranscript, _)) = &pipelined_run {
            let preference = run_reference(pcfg);
            let preference_path = opts.out_dir.join("reference_pipelined.txt");
            std::fs::write(&preference_path, &preference)
                .map_err(|err| format!("cannot write {}: {err}", preference_path.display()))?;
            if preference != *ptranscript {
                return Err(format!(
                    "pipelined transcript mismatch: {} differs from {} \
                     (distributed sha256 {}, reference {})",
                    opts.out_dir.join("distributed_pipelined.txt").display(),
                    preference_path.display(),
                    hex(&sha256(ptranscript.as_bytes())),
                    hex(&sha256(preference.as_bytes())),
                ));
            }
        }
    }
    let (pipelined, pipelined_secs) = match pipelined_run {
        Some((_, transcript, secs)) => (Some(transcript), Some(secs)),
        None => (None, None),
    };
    Ok(LaunchReport {
        distributed,
        reference,
        distributed_secs,
        reference_secs,
        pipelined,
        pipelined_secs,
        pipeline_depth: depth,
    })
}

/// A small deployment suitable for smoke tests: 3 servers, low noise,
/// ephemeral loopback ports, a mixed 4-round schedule.
#[must_use]
pub fn smoke_config() -> DeploymentConfig {
    use vuvuzela_dp::{NoiseDistribution, NoiseMode};
    DeploymentConfig {
        system: SystemConfig {
            chain_len: 3,
            conversation_noise: NoiseDistribution::new(6.0, 2.0),
            dialing_noise: NoiseDistribution::new(3.0, 1.0),
            noise_mode: NoiseMode::Sampled,
            workers: 2,
            conversation_slots: 1,
            retransmit_after: 2,
            exchange_shards: 4,
        },
        seed: 42,
        entry_addr: "127.0.0.1:0".to_string(),
        server_addrs: vec!["127.0.0.1:0".to_string(); 3],
        schedule: vec![
            ScheduleEntry::Conversation {
                pairs: 2,
                singles: 1,
            },
            ScheduleEntry::Dialing { dials: 2, drops: 4 },
            ScheduleEntry::Conversation {
                pairs: 1,
                singles: 0,
            },
            ScheduleEntry::Conversation {
                pairs: 0,
                singles: 2,
            },
        ],
        connect_timeout_ms: DEFAULT_CONNECT_TIMEOUT_MS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_smoke_deployment_matches_builtin() {
        // `deploy/smoke.json` is what CI's deploy-smoke job launches;
        // regenerate it with `vuvuzela-launch --dump-config` if
        // `smoke_config` changes.
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("deploy/smoke.json");
        let committed = load_config(&path).expect("committed smoke deployment parses");
        assert_eq!(committed.digest(), smoke_config().digest());
    }

    #[test]
    fn deployment_config_roundtrips_and_rejects_typos() {
        let cfg = smoke_config();
        let back = DeploymentConfig::from_json(&cfg.to_json()).expect("round-trips");
        assert_eq!(back.seed, cfg.seed);
        assert_eq!(back.entry_addr, cfg.entry_addr);
        assert_eq!(back.server_addrs, cfg.server_addrs);
        assert_eq!(back.schedule, cfg.schedule);
        assert_eq!(back.connect_timeout_ms, cfg.connect_timeout_ms);
        assert_eq!(back.digest(), cfg.digest());

        // The connect timeout is optional and defaults when absent.
        let mut value = cfg.to_json();
        if let Value::Object(map) = &mut value {
            map.remove("connect_timeout_ms");
        }
        let defaulted = DeploymentConfig::from_json(&value).expect("timeout defaults");
        assert_eq!(defaulted.connect_timeout_ms, DEFAULT_CONNECT_TIMEOUT_MS);

        let mut value = cfg.to_json();
        if let Value::Object(map) = &mut value {
            map.insert("entry_address".to_string(), Value::from("x"));
        }
        let err = DeploymentConfig::from_json(&value).expect_err("typo");
        assert!(err.contains("entry_address"), "{err}");

        let mut value = cfg.to_json();
        if let Value::Object(map) = &mut value {
            if let Some(Value::Array(schedule)) = map.get_mut("schedule") {
                schedule[0] = json!({"type": "conversation", "pair": 1, "singles": 0});
            }
        }
        let err = DeploymentConfig::from_json(&value).expect_err("nested typo");
        assert!(err.contains("pair"), "{err}");
    }

    #[test]
    fn addr_count_must_match_chain_len() {
        let mut cfg = smoke_config();
        cfg.server_addrs.pop();
        let err = DeploymentConfig::from_json(&cfg.to_json()).expect_err("mismatch");
        assert!(err.contains("chain_len"), "{err}");
    }

    #[test]
    fn client_rounds_are_deterministic() {
        let cfg = smoke_config();
        let pks = cfg.server_public_keys();
        let a = build_client_round(&cfg, &pks, 0);
        let b = build_client_round(&cfg, &pks, 0);
        assert_eq!(a.onions, b.onions);
        assert_eq!(a.messages, b.messages);
        let c = build_client_round(&cfg, &pks, 2);
        assert_ne!(a.onions, c.onions, "rounds draw distinct batches");
    }
}
