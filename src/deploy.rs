//! Real-deployment plumbing for the `vuvuzela-*` bins.
//!
//! A deployment is described by one JSON file ([`DeploymentConfig`]):
//! the shared [`SystemConfig`], the chain seed, one TCP address per
//! node, and a scripted round schedule. Every process loads the same
//! file; the framed-TCP handshake carries a SHA-256 digest of its
//! canonical rendering, so two processes started with different configs
//! fail at connect time instead of corrupting a round.
//!
//! The schedule is replayed by a *deterministic* client driver: every
//! batch is a pure function of `(seed, round)`, so the distributed run
//! (`vuvuzela-launch`: entry + servers + client as separate OS
//! processes over loopback TCP) and the in-process reference
//! ([`run_reference`], the sequential [`Chain`]) must produce
//! **byte-identical transcripts** — replies, dead-drop histograms and
//! dialing counts included. `vuvuzela-launch --check` asserts exactly
//! that, and CI runs it on every push.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

use serde_json::{json, Value};
use vuvuzela_core::chain::{build_server, server_keypairs, Chain};
use vuvuzela_core::config::{expect_object, get_u64, reject_unknown, require};
use vuvuzela_core::node::{run_entry_node, run_server_node, NodeStats, RoundTrailer};
use vuvuzela_core::observables::{ConversationObservables, DialingObservables};
use vuvuzela_core::server::RoundKind;
use vuvuzela_core::SystemConfig;
use vuvuzela_crypto::onion::{self, LayerKey};
use vuvuzela_crypto::sha256::{sha256, Sha256};
use vuvuzela_crypto::x25519::{Keypair, PublicKey};
use vuvuzela_net::{Error, LinkId, TcpTransport, Transport};
use vuvuzela_sim::transcript::{hex, Transcript};
use vuvuzela_wire::conversation::ExchangeRequest;
use vuvuzela_wire::deaddrop::DeadDropId;
use vuvuzela_wire::dialing::{DialRequest, SealedInvitation};
use vuvuzela_wire::{BatchFrame, Frame, RoundId, RoundType, SEALED_MESSAGE_LEN};

/// How long connecting processes retry a refused connection: deployment
/// processes start in arbitrary order.
pub const CONNECT_TIMEOUT: Duration = Duration::from_secs(30);

/// Domain separator for the client driver's per-round batch RNG,
/// keeping it disjoint from the chain- and server-level streams.
const CLIENT_RNG_DOMAIN: u64 = 0xC11E_47B0_0000_0000;

/// One scripted round of a deployment schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleEntry {
    /// A conversation round: `pairs` client pairs exchanging through
    /// shared dead drops plus `singles` lone requests.
    Conversation {
        /// Client pairs that complete a real exchange.
        pairs: u32,
        /// Lone clients whose requests meet no partner.
        singles: u32,
    },
    /// A dialing round: `dials` real invitations into `drops` drops.
    Dialing {
        /// Real invitations sent.
        dials: u32,
        /// Invitation dead drops this round (§5.4's `m`).
        drops: u32,
    },
}

impl ScheduleEntry {
    fn to_json(self) -> Value {
        match self {
            ScheduleEntry::Conversation { pairs, singles } => json!({
                "type": "conversation",
                "pairs": pairs,
                "singles": singles,
            }),
            ScheduleEntry::Dialing { dials, drops } => json!({
                "type": "dialing",
                "dials": dials,
                "drops": drops,
            }),
        }
    }

    fn from_json(value: &Value) -> Result<ScheduleEntry, String> {
        let map = expect_object(value, "schedule entry")?;
        match require(map, "type")?.as_str() {
            Some("conversation") => {
                reject_unknown(map, &["type", "pairs", "singles"], "conversation entry")?;
                Ok(ScheduleEntry::Conversation {
                    pairs: get_u64(map, "pairs")? as u32,
                    singles: get_u64(map, "singles")? as u32,
                })
            }
            Some("dialing") => {
                reject_unknown(map, &["type", "dials", "drops"], "dialing entry")?;
                Ok(ScheduleEntry::Dialing {
                    dials: get_u64(map, "dials")? as u32,
                    drops: get_u64(map, "drops")? as u32,
                })
            }
            Some(other) => Err(format!("unknown schedule entry type {other:?}")),
            None => Err("schedule entry type must be a string".to_string()),
        }
    }
}

/// Everything the `vuvuzela-*` bins need to run one deployment.
#[derive(Clone, Debug)]
pub struct DeploymentConfig {
    /// The protocol parameters every node shares.
    pub system: SystemConfig,
    /// Chain seed: server keys, noise, and the scripted client batches
    /// all derive from it.
    pub seed: u64,
    /// TCP address the entry listens on for the client driver.
    pub entry_addr: String,
    /// TCP address each mix server listens on for its upstream peer
    /// (`server_addrs[i]` is server *i*; must match
    /// `system.chain_len`). A `:0` port is resolved to a free one by
    /// [`resolve_ephemeral_ports`].
    pub server_addrs: Vec<String>,
    /// The scripted rounds, replayed in order as rounds `0..n`.
    pub schedule: Vec<ScheduleEntry>,
}

impl DeploymentConfig {
    /// Serializes to the deployment-file JSON shape.
    #[must_use]
    pub fn to_json(&self) -> Value {
        json!({
            "system": self.system.to_json(),
            "seed": self.seed,
            "entry_addr": self.entry_addr.clone(),
            "server_addrs": self.server_addrs.clone(),
            "schedule": self.schedule.iter().map(|e| e.to_json()).collect::<Vec<Value>>(),
        })
    }

    /// Deserializes a deployment file, rejecting unknown fields at
    /// every level.
    ///
    /// # Errors
    ///
    /// A description of the first missing, unknown, or ill-typed field.
    pub fn from_json(value: &Value) -> Result<DeploymentConfig, String> {
        let map = expect_object(value, "deployment config")?;
        reject_unknown(
            map,
            &["system", "seed", "entry_addr", "server_addrs", "schedule"],
            "deployment config",
        )?;
        let system = SystemConfig::from_json(require(map, "system")?)?;
        let entry_addr = require(map, "entry_addr")?
            .as_str()
            .ok_or("entry_addr must be a string")?
            .to_string();
        let server_addrs = match require(map, "server_addrs")? {
            Value::Array(addrs) => addrs
                .iter()
                .map(|addr| {
                    addr.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "server_addrs entries must be strings".to_string())
                })
                .collect::<Result<Vec<String>, String>>()?,
            _ => return Err("server_addrs must be an array".to_string()),
        };
        if server_addrs.len() != system.chain_len {
            return Err(format!(
                "server_addrs has {} entries but chain_len is {}",
                server_addrs.len(),
                system.chain_len
            ));
        }
        let schedule = match require(map, "schedule")? {
            Value::Array(entries) => entries
                .iter()
                .map(ScheduleEntry::from_json)
                .collect::<Result<Vec<ScheduleEntry>, String>>()?,
            _ => return Err("schedule must be an array".to_string()),
        };
        Ok(DeploymentConfig {
            system,
            seed: get_u64(map, "seed")?,
            entry_addr,
            server_addrs,
            schedule,
        })
    }

    /// The SHA-256 digest of the canonical config rendering, exchanged
    /// in every TCP handshake so mismatched processes fail fast.
    #[must_use]
    pub fn digest(&self) -> [u8; 32] {
        let rendered = serde_json::to_string_pretty(&self.to_json())
            .expect("deployment config always renders");
        sha256(rendered.as_bytes())
    }

    /// The chain's public keys, derived from `(chain_len, seed)` just
    /// like every server derives its own secret.
    #[must_use]
    pub fn server_public_keys(&self) -> Vec<PublicKey> {
        server_keypairs(self.system.chain_len, self.seed)
            .iter()
            .map(|kp| kp.public)
            .collect()
    }
}

/// Loads and strictly parses a deployment file.
///
/// # Errors
///
/// IO failures and parse errors, rendered with the offending path.
pub fn load_config(path: &Path) -> Result<DeploymentConfig, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|err| format!("cannot read {}: {err}", path.display()))?;
    let value = serde_json::from_str(&text)
        .map_err(|err| format!("{} is not valid JSON: {err}", path.display()))?;
    DeploymentConfig::from_json(&value).map_err(|err| format!("{}: {err}", path.display()))
}

/// One scripted round's client-side state: the onions fed in, and what
/// is needed to verify the replies.
pub struct ClientRound {
    /// Request onions, in feed order.
    pub onions: Vec<Vec<u8>>,
    /// Reply-layer keys per onion (conversation rounds only).
    pub keys: Vec<Vec<LayerKey>>,
    /// `pair_of[i] = Some(j)` when onions `i` and `j` share a dead drop.
    pub pair_of: Vec<Option<usize>>,
    /// The sealed message each conversation onion deposited.
    pub messages: Vec<Vec<u8>>,
}

/// Builds round `round`'s client batch — a pure function of the config
/// seed and the round number, so the distributed client driver and the
/// in-process reference feed byte-identical onions.
#[must_use]
pub fn build_client_round(cfg: &DeploymentConfig, pks: &[PublicKey], round: u64) -> ClientRound {
    let mut rng = StdRng::seed_from_u64((cfg.seed ^ CLIENT_RNG_DOMAIN).wrapping_add(round));
    let mut data = ClientRound {
        onions: Vec::new(),
        keys: Vec::new(),
        pair_of: Vec::new(),
        messages: Vec::new(),
    };
    let push_exchange = |rng: &mut StdRng, data: &mut ClientRound, drop: DeadDropId| {
        let mut sealed_message = vec![0u8; SEALED_MESSAGE_LEN];
        rng.fill_bytes(&mut sealed_message);
        let request = ExchangeRequest {
            drop,
            sealed_message: sealed_message.clone(),
        };
        let (onion, keys) = onion::wrap(rng, pks, round, &request.encode());
        data.onions.push(onion);
        data.keys.push(keys);
        data.messages.push(sealed_message);
    };
    match cfg.schedule[round as usize] {
        ScheduleEntry::Conversation { pairs, singles } => {
            for pair in 0..pairs {
                let mut id = [0u8; 16];
                rng.fill_bytes(&mut id);
                let drop = DeadDropId(id);
                push_exchange(&mut rng, &mut data, drop);
                push_exchange(&mut rng, &mut data, drop);
                let base = 2 * pair as usize;
                data.pair_of.push(Some(base + 1));
                data.pair_of.push(Some(base));
            }
            for _ in 0..singles {
                let mut id = [0u8; 16];
                rng.fill_bytes(&mut id);
                push_exchange(&mut rng, &mut data, DeadDropId(id));
                data.pair_of.push(None);
            }
        }
        ScheduleEntry::Dialing { dials, drops } => {
            for _ in 0..dials {
                let caller = Keypair::generate(&mut rng);
                let callee = Keypair::generate(&mut rng);
                let request = DialRequest {
                    drop: vuvuzela_wire::deaddrop::InvitationDropIndex::for_recipient(
                        &callee.public,
                        drops,
                    ),
                    invitation: SealedInvitation::seal(&mut rng, &caller.public, &callee.public),
                };
                let (onion, _) = onion::wrap(&mut rng, pks, round, &request.encode());
                data.onions.push(onion);
                data.pair_of.push(None);
            }
        }
    }
    data
}

/// Counts the paired exchanges whose replies decrypt to the partner's
/// sealed message — the end-to-end correctness check of a round.
fn verify_pairs(data: &ClientRound, round: u64, replies: &[Vec<u8>]) -> usize {
    data.pair_of
        .iter()
        .enumerate()
        .filter(|&(i, &pair)| {
            pair.is_some_and(|j| {
                i < replies.len()
                    && onion::unwrap_reply_layers(&data.keys[i], round, &replies[i])
                        .is_ok_and(|plain| plain == data.messages[j])
            })
        })
        .count()
}

fn transcript_header(cfg: &DeploymentConfig) -> Transcript {
    let mut transcript = Transcript::new();
    transcript.push(format!(
        "deploy digest {} seed {} chain {} rounds {}",
        hex(&cfg.digest()),
        cfg.seed,
        cfg.system.chain_len,
        cfg.schedule.len()
    ));
    transcript
}

fn transcribe_conversation(
    transcript: &mut Transcript,
    round: u64,
    data: &ClientRound,
    replies: &[Vec<u8>],
    obs: ConversationObservables,
) {
    let mut hasher = Sha256::new();
    for reply in replies {
        hasher.update(reply);
    }
    transcript.push(format!(
        "round {round} conversation clients {} replies {} sha256 {} verified {}",
        data.onions.len(),
        replies.len(),
        hex(&hasher.finalize()),
        verify_pairs(data, round, replies)
    ));
    transcript.push(format!(
        "round {round} obs m1 {} m2 {} m_many {} total {}",
        obs.m1, obs.m2, obs.m_many, obs.total_requests
    ));
}

fn transcribe_dialing(
    transcript: &mut Transcript,
    round: u64,
    data: &ClientRound,
    drops: u32,
    obs: &DialingObservables,
) {
    transcript.push(format!(
        "round {round} dialing clients {} drops {drops} counts {:?} noop {}",
        data.onions.len(),
        obs.counts,
        obs.noop_writes
    ));
}

/// Replays the schedule on the in-process sequential [`Chain`] — the
/// reference transcript every distributed run is diffed against.
#[must_use]
pub fn run_reference(cfg: &DeploymentConfig) -> String {
    let mut chain = Chain::new(cfg.system.clone(), cfg.seed);
    let pks = chain.server_public_keys();
    let mut transcript = transcript_header(cfg);
    for (index, entry) in cfg.schedule.iter().enumerate() {
        let round = index as u64;
        let data = build_client_round(cfg, &pks, round);
        match *entry {
            ScheduleEntry::Conversation { .. } => {
                let (replies, _) = chain.run_conversation_round(round, data.onions.clone());
                let (_, obs) = *chain
                    .conversation_observables()
                    .last()
                    .expect("round just ran");
                transcribe_conversation(&mut transcript, round, &data, &replies, obs);
            }
            ScheduleEntry::Dialing { drops, .. } => {
                chain.run_dialing_round(round, data.onions.clone(), drops);
                let (_, obs) = chain.dialing_observables().last().expect("round just ran");
                let obs = obs.clone();
                transcribe_dialing(&mut transcript, round, &data, drops, &obs);
            }
        }
    }
    transcript.push(format!("end rounds {}", cfg.schedule.len()));
    transcript.render()
}

fn protocol(link: LinkId, reason: String) -> Error {
    Error::Protocol { link, reason }
}

/// Replays the schedule against a live entry over any [`Transport`]
/// (the TCP client bin, or in-memory endpoints in tests) and builds the
/// client-side transcript.
///
/// # Errors
///
/// Transport failures, or [`Error::Protocol`] when the chain answers
/// out of protocol (wrong round, malformed trailer, bad geometry).
pub fn run_client(cfg: &DeploymentConfig, entry: &dyn Transport) -> Result<String, Error> {
    let pks = cfg.server_public_keys();
    let link = entry.link_id();
    let mut transcript = transcript_header(cfg);
    for (index, sched) in cfg.schedule.iter().enumerate() {
        let round = index as u64;
        let data = build_client_round(cfg, &pks, round);
        let (round_type, num_drops, kind) = match *sched {
            ScheduleEntry::Conversation { .. } => {
                (RoundType::Conversation, 0, RoundKind::Conversation)
            }
            ScheduleEntry::Dialing { drops, .. } => (
                RoundType::Dialing,
                drops,
                RoundKind::Dialing { num_drops: drops },
            ),
        };
        let width = onion::wrapped_len(kind.payload_len(), cfg.system.chain_len);
        entry.send(Frame::Batch(BatchFrame {
            link,
            round: RoundId(round),
            round_type,
            num_drops,
            backward: false,
            stride: width as u32,
            width: width as u32,
            count: data.onions.len() as u32,
            payload: data.onions.concat(),
            trailer: Vec::new(),
        }))?;
        let back = match entry.recv()? {
            Frame::Batch(back) if back.backward && back.round.0 == round => back,
            other => {
                return Err(protocol(
                    link,
                    format!("expected the backward frame of round {round}, got {other:?}"),
                ))
            }
        };
        let trailer = RoundTrailer::decode(&back.trailer)
            .map_err(|reason| protocol(link, format!("round {round}: {reason}")))?;
        match (back.round_type, trailer) {
            (RoundType::Conversation, RoundTrailer::Conversation(obs)) => {
                let stride = back.stride as usize;
                let replies: Vec<Vec<u8>> = back
                    .payload
                    .chunks(stride.max(1))
                    .map(|chunk| chunk[..back.width as usize].to_vec())
                    .collect();
                transcribe_conversation(&mut transcript, round, &data, &replies, obs);
            }
            (RoundType::Dialing, RoundTrailer::Dialing(obs)) => {
                transcribe_dialing(&mut transcript, round, &data, num_drops, &obs);
            }
            (round_type, _) => {
                return Err(protocol(
                    link,
                    format!("round {round}: trailer does not match round type {round_type:?}"),
                ))
            }
        }
    }
    entry.send(Frame::Bye)?;
    transcript.push(format!("end rounds {}", cfg.schedule.len()));
    Ok(transcript.render())
}

/// Runs mix server `position` over TCP: bind the upstream listener,
/// connect downstream (retrying while peers start up), accept the
/// upstream peer, then hand the connections to the node runtime.
///
/// # Errors
///
/// Bind/connect/handshake failures and any protocol violation from
/// [`run_server_node`].
pub fn serve_server(cfg: &DeploymentConfig, position: usize) -> Result<NodeStats, Error> {
    let digest = cfg.digest();
    let upstream_link = LinkId::Hop(position as u32);
    let listener = TcpListener::bind(&cfg.server_addrs[position]).map_err(|source| Error::Io {
        link: upstream_link,
        op: "bind",
        source,
    })?;
    let downstream = if position + 1 < cfg.system.chain_len {
        Some(TcpTransport::connect(
            cfg.server_addrs[position + 1].as_str(),
            LinkId::Hop(position as u32 + 1),
            digest,
            CONNECT_TIMEOUT,
        )?)
    } else {
        None
    };
    let upstream = TcpTransport::accept(&listener, upstream_link, digest)?;
    let server = build_server(&cfg.system, cfg.seed, position);
    run_server_node(
        server,
        &cfg.system,
        cfg.seed,
        &upstream,
        downstream.as_ref().map(|d| d as &dyn Transport),
    )
}

/// Runs the entry over TCP: bind the client listener, connect to
/// server 0, accept the client driver, relay rounds until its
/// [`Frame::Bye`].
///
/// # Errors
///
/// Bind/connect/handshake failures and any protocol violation from
/// [`run_entry_node`].
pub fn serve_entry(cfg: &DeploymentConfig) -> Result<NodeStats, Error> {
    let digest = cfg.digest();
    let listener = TcpListener::bind(&cfg.entry_addr).map_err(|source| Error::Io {
        link: LinkId::Clients,
        op: "bind",
        source,
    })?;
    let downstream = TcpTransport::connect(
        cfg.server_addrs[0].as_str(),
        LinkId::Hop(0),
        digest,
        CONNECT_TIMEOUT,
    )?;
    let clients = TcpTransport::accept(&listener, LinkId::Clients, digest)?;
    run_entry_node(&cfg.system, &clients, &downstream)
}

/// Runs the scripted client driver over TCP against a live entry.
///
/// # Errors
///
/// Connect/handshake failures and any protocol violation from
/// [`run_client`].
pub fn run_client_tcp(cfg: &DeploymentConfig) -> Result<String, Error> {
    let entry = TcpTransport::connect(
        cfg.entry_addr.as_str(),
        LinkId::Clients,
        cfg.digest(),
        CONNECT_TIMEOUT,
    )?;
    run_client(cfg, &entry)
}

/// Rewrites every `:0` address to a concrete free loopback port
/// (pre-binding a listener to discover one), so one deployment file can
/// say "any free port" and all processes still agree.
///
/// # Errors
///
/// Bind failures while probing for free ports.
pub fn resolve_ephemeral_ports(cfg: &mut DeploymentConfig) -> Result<(), String> {
    let resolve = |addr: &mut String| -> Result<(), String> {
        if addr.ends_with(":0") {
            let listener = TcpListener::bind(addr.as_str())
                .map_err(|err| format!("cannot probe a free port on {addr}: {err}"))?;
            *addr = listener
                .local_addr()
                .map_err(|err| format!("no local addr for {addr}: {err}"))?
                .to_string();
        }
        Ok(())
    };
    resolve(&mut cfg.entry_addr)?;
    for addr in &mut cfg.server_addrs {
        resolve(addr)?;
    }
    Ok(())
}

/// Options for [`launch`].
pub struct LaunchOptions {
    /// Also run the in-process reference and fail on any transcript
    /// difference.
    pub check: bool,
    /// Where transcripts, the resolved config, and the bench artefact
    /// are written.
    pub out_dir: PathBuf,
    /// Directory holding the `vuvuzela-server` / `vuvuzela-entry` /
    /// `vuvuzela-client` bins; defaults to the launcher's own
    /// directory.
    pub bin_dir: Option<PathBuf>,
}

/// What [`launch`] produced.
pub struct LaunchReport {
    /// The distributed run's transcript (also written to
    /// `distributed.txt`).
    pub distributed: String,
    /// The reference transcript, when `--check` ran.
    pub reference: Option<String>,
    /// Wall-clock seconds of the distributed run (client connect →
    /// transcript complete; includes process startup).
    pub distributed_secs: f64,
    /// Wall-clock seconds of the in-process reference run.
    pub reference_secs: Option<f64>,
}

fn kill_all(children: &mut [(String, Child)]) {
    for (_, child) in children.iter_mut() {
        let _ = child.kill();
        let _ = child.wait();
    }
}

/// Launches one deployment as separate OS processes — `chain_len`
/// `vuvuzela-server`s, one `vuvuzela-entry`, one `vuvuzela-client` —
/// replays the schedule, and writes `distributed.txt`,
/// `reference.txt` (with `check`), `resolved.json` and
/// `BENCH_wire_chain.json` into the out dir.
///
/// # Errors
///
/// Spawn failures, a non-zero child exit, or (with `check`) a
/// transcript mismatch.
pub fn launch(mut cfg: DeploymentConfig, opts: &LaunchOptions) -> Result<LaunchReport, String> {
    resolve_ephemeral_ports(&mut cfg)?;
    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|err| format!("cannot create {}: {err}", opts.out_dir.display()))?;
    let resolved_path = opts.out_dir.join("resolved.json");
    let rendered =
        serde_json::to_string_pretty(&cfg.to_json()).expect("deployment config always renders");
    std::fs::write(&resolved_path, rendered + "\n")
        .map_err(|err| format!("cannot write {}: {err}", resolved_path.display()))?;

    let bin_dir = match &opts.bin_dir {
        Some(dir) => dir.clone(),
        None => std::env::current_exe()
            .map_err(|err| format!("cannot locate the launcher binary: {err}"))?
            .parent()
            .ok_or("the launcher binary has no parent directory")?
            .to_path_buf(),
    };
    let bin = |name: &str| bin_dir.join(format!("{name}{}", std::env::consts::EXE_SUFFIX));

    let started = Instant::now();
    let mut children: Vec<(String, Child)> = Vec::new();
    // Servers first (tail to head so downstream listeners exist early,
    // although the connect retry loop tolerates any order), then the
    // entry, then the client driver.
    for position in (0..cfg.system.chain_len).rev() {
        let child = Command::new(bin("vuvuzela-server"))
            .arg("--config")
            .arg(&resolved_path)
            .arg("--position")
            .arg(position.to_string())
            .spawn()
            .map_err(|err| format!("cannot spawn vuvuzela-server {position}: {err}"))?;
        children.push((format!("vuvuzela-server {position}"), child));
    }
    match Command::new(bin("vuvuzela-entry"))
        .arg("--config")
        .arg(&resolved_path)
        .spawn()
    {
        Ok(child) => children.push(("vuvuzela-entry".to_string(), child)),
        Err(err) => {
            kill_all(&mut children);
            return Err(format!("cannot spawn vuvuzela-entry: {err}"));
        }
    }
    let transcript_path = opts.out_dir.join("distributed.txt");
    match Command::new(bin("vuvuzela-client"))
        .arg("--config")
        .arg(&resolved_path)
        .arg("--out")
        .arg(&transcript_path)
        .spawn()
    {
        Ok(child) => children.push(("vuvuzela-client".to_string(), child)),
        Err(err) => {
            kill_all(&mut children);
            return Err(format!("cannot spawn vuvuzela-client: {err}"));
        }
    }

    let mut failure = None;
    for (name, child) in &mut children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                failure = Some(format!("{name} exited with {status}"));
                break;
            }
            Err(err) => {
                failure = Some(format!("cannot wait for {name}: {err}"));
                break;
            }
        }
    }
    if let Some(failure) = failure {
        kill_all(&mut children);
        return Err(failure);
    }
    let distributed_secs = started.elapsed().as_secs_f64();
    let distributed = std::fs::read_to_string(&transcript_path).map_err(|err| {
        format!(
            "client wrote no transcript at {}: {err}",
            transcript_path.display()
        )
    })?;

    let (reference, reference_secs) = if opts.check {
        let started = Instant::now();
        let reference = run_reference(&cfg);
        let secs = started.elapsed().as_secs_f64();
        let reference_path = opts.out_dir.join("reference.txt");
        std::fs::write(&reference_path, &reference)
            .map_err(|err| format!("cannot write {}: {err}", reference_path.display()))?;
        (Some(reference), Some(secs))
    } else {
        (None, None)
    };

    let rounds = cfg.schedule.len();
    let bench = json!({
        "bench": "wire_chain",
        "rounds": rounds,
        "loopback_multiprocess": {
            "secs": distributed_secs,
            "rounds_per_sec": rounds as f64 / distributed_secs.max(1e-9),
        },
        "in_process_reference": reference_secs.map(|secs| json!({
            "secs": secs,
            "rounds_per_sec": rounds as f64 / secs.max(1e-9),
        })).unwrap_or(Value::Null),
        "note": "informational: loopback TCP on a shared-core box, includes process startup; \
                 not a distributed-deployment throughput claim",
    });
    let bench_path = opts.out_dir.join("BENCH_wire_chain.json");
    std::fs::write(
        &bench_path,
        serde_json::to_string_pretty(&bench).expect("bench renders") + "\n",
    )
    .map_err(|err| format!("cannot write {}: {err}", bench_path.display()))?;

    if let Some(reference) = &reference {
        if *reference != distributed {
            return Err(format!(
                "transcript mismatch: {} differs from {} (distributed sha256 {}, reference {})",
                transcript_path.display(),
                opts.out_dir.join("reference.txt").display(),
                hex(&sha256(distributed.as_bytes())),
                hex(&sha256(reference.as_bytes())),
            ));
        }
    }
    Ok(LaunchReport {
        distributed,
        reference,
        distributed_secs,
        reference_secs,
    })
}

/// A small deployment suitable for smoke tests: 3 servers, low noise,
/// ephemeral loopback ports, a mixed 4-round schedule.
#[must_use]
pub fn smoke_config() -> DeploymentConfig {
    use vuvuzela_dp::{NoiseDistribution, NoiseMode};
    DeploymentConfig {
        system: SystemConfig {
            chain_len: 3,
            conversation_noise: NoiseDistribution::new(6.0, 2.0),
            dialing_noise: NoiseDistribution::new(3.0, 1.0),
            noise_mode: NoiseMode::Sampled,
            workers: 2,
            conversation_slots: 1,
            retransmit_after: 2,
            exchange_shards: 4,
        },
        seed: 42,
        entry_addr: "127.0.0.1:0".to_string(),
        server_addrs: vec!["127.0.0.1:0".to_string(); 3],
        schedule: vec![
            ScheduleEntry::Conversation {
                pairs: 2,
                singles: 1,
            },
            ScheduleEntry::Dialing { dials: 2, drops: 4 },
            ScheduleEntry::Conversation {
                pairs: 1,
                singles: 0,
            },
            ScheduleEntry::Conversation {
                pairs: 0,
                singles: 2,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_smoke_deployment_matches_builtin() {
        // `deploy/smoke.json` is what CI's deploy-smoke job launches;
        // regenerate it with `vuvuzela-launch --dump-config` if
        // `smoke_config` changes.
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("deploy/smoke.json");
        let committed = load_config(&path).expect("committed smoke deployment parses");
        assert_eq!(committed.digest(), smoke_config().digest());
    }

    #[test]
    fn deployment_config_roundtrips_and_rejects_typos() {
        let cfg = smoke_config();
        let back = DeploymentConfig::from_json(&cfg.to_json()).expect("round-trips");
        assert_eq!(back.seed, cfg.seed);
        assert_eq!(back.entry_addr, cfg.entry_addr);
        assert_eq!(back.server_addrs, cfg.server_addrs);
        assert_eq!(back.schedule, cfg.schedule);
        assert_eq!(back.digest(), cfg.digest());

        let mut value = cfg.to_json();
        if let Value::Object(map) = &mut value {
            map.insert("entry_address".to_string(), Value::from("x"));
        }
        let err = DeploymentConfig::from_json(&value).expect_err("typo");
        assert!(err.contains("entry_address"), "{err}");

        let mut value = cfg.to_json();
        if let Value::Object(map) = &mut value {
            if let Some(Value::Array(schedule)) = map.get_mut("schedule") {
                schedule[0] = json!({"type": "conversation", "pair": 1, "singles": 0});
            }
        }
        let err = DeploymentConfig::from_json(&value).expect_err("nested typo");
        assert!(err.contains("pair"), "{err}");
    }

    #[test]
    fn addr_count_must_match_chain_len() {
        let mut cfg = smoke_config();
        cfg.server_addrs.pop();
        let err = DeploymentConfig::from_json(&cfg.to_json()).expect_err("mismatch");
        assert!(err.contains("chain_len"), "{err}");
    }

    #[test]
    fn client_rounds_are_deterministic() {
        let cfg = smoke_config();
        let pks = cfg.server_public_keys();
        let a = build_client_round(&cfg, &pks, 0);
        let b = build_client_round(&cfg, &pks, 0);
        assert_eq!(a.onions, b.onions);
        assert_eq!(a.messages, b.messages);
        let c = build_client_round(&cfg, &pks, 2);
        assert_ne!(a.onions, c.onions, "rounds draw distinct batches");
    }
}
