//! # Vuvuzela
//!
//! A Rust reproduction of *"Vuvuzela: Scalable Private Messaging Resistant
//! to Traffic Analysis"* (van den Hooff, Lazar, Zaharia, Zeldovich —
//! SOSP 2015): a metadata-private text-messaging system that hides **who
//! is talking to whom** from an adversary that observes all network
//! traffic and controls all but one server.
//!
//! This umbrella crate re-exports the workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`crypto`] | From-scratch X25519, ChaCha20-Poly1305, SHA-256, HKDF, onion encryption, sealed boxes |
//! | [`dp`] | Truncated Laplace noise, (ε, δ) accounting, advanced composition, noise planner |
//! | [`wire`] | Fixed-size message formats, dead-drop IDs, encode/decode |
//! | [`net`] | Simulated byte-metered network with adversary taps |
//! | [`core`] | Clients, the server chain, conversation + dialing protocols |
//! | [`adversary`] | Traffic-analysis attacks and the observables they see |
//! | [`baseline`] | Comparison systems: no-noise mixnet, broadcast messenger, single trusted server |
//! | [`sim`] | Deterministic deployment simulator: scripted churn, server faults, invariant checking |
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for a complete two-user conversation over
//! a three-server chain. The short version:
//!
//! ```
//! use vuvuzela::core::testkit::TestNet;
//!
//! // A three-server chain with deterministic noise, two users.
//! let mut net = TestNet::builder().servers(3).noise_mu(50.0).build();
//! let alice = net.add_user("alice");
//! let bob = net.add_user("bob");
//!
//! // Alice dials Bob; both enter the conversation; they exchange a round.
//! net.dial(alice, bob);
//! net.run_dialing_round();
//! net.accept_all_invitations();
//! net.queue_message(alice, bob, b"hello, Bob!");
//! net.run_conversation_round();
//! assert_eq!(net.received(bob), vec![b"hello, Bob!".to_vec()]);
//! ```

#![forbid(unsafe_code)]

pub mod deploy;

pub use serde_json;
pub use vuvuzela_adversary as adversary;
pub use vuvuzela_baseline as baseline;
pub use vuvuzela_core as core;
pub use vuvuzela_crypto as crypto;
pub use vuvuzela_dp as dp;
pub use vuvuzela_net as net;
pub use vuvuzela_sim as sim;
pub use vuvuzela_wire as wire;
