//! End-to-end adversary tests: the attacks of §2.1/§4.2 executed against
//! the real chain (taps + compromised-last-server observables), showing
//! the leak without noise and its absence with noise.

use parking_lot::Mutex;
use std::sync::Arc;
use vuvuzela::adversary::taps::{BlockClient, KeepOnly};
use vuvuzela::baseline::no_noise;
use vuvuzela::core::testkit::TestNet;
use vuvuzela::core::SystemConfig;
use vuvuzela::dp::{NoiseDistribution, NoiseMode};

fn make_net(noise: bool, seed: u64, extra_users: usize) -> TestNet {
    let base = SystemConfig {
        conversation_noise: NoiseDistribution::new(30.0, 6.0),
        noise_mode: NoiseMode::Sampled,
        ..SystemConfig::default()
    };
    let config = if noise {
        base
    } else {
        no_noise::config_from(&base)
    };
    let mut net = TestNet::builder().config(config).seed(seed).build();
    for i in 0..extra_users {
        net.add_user(format!("extra{i}"));
    }
    net
}

/// §4.2 disruption attack against the no-noise baseline: a compromised
/// first server keeps only Alice and Bob; the last-server histogram is a
/// perfect oracle for whether they converse.
#[test]
fn disruption_attack_is_an_oracle_without_noise() {
    for talking in [true, false] {
        let mut net = make_net(false, 31, 0);
        let alice = net.add_user("alice");
        let bob = net.add_user("bob");
        for i in 0..6 {
            net.add_user(format!("bg{i}"));
        }
        if talking {
            net.dial(alice, bob);
            net.run_dialing_round();
            net.accept_all_invitations();
        }
        net.chain_mut()
            .client_link_mut()
            .attach_tap(Arc::new(Mutex::new(KeepOnly {
                indices: vec![0, 1],
                only_round: None,
            })));
        net.run_conversation_round();
        let (_, obs) = *net
            .chain()
            .conversation_observables()
            .last()
            .expect("round ran");
        assert_eq!(
            obs.m2,
            u64::from(talking),
            "without noise, m2 equals the ground truth exactly"
        );
    }
}

/// The same attack against Vuvuzela: the histogram is dominated by cover
/// traffic, and the talking/idle worlds overlap.
#[test]
fn disruption_attack_is_smothered_by_noise() {
    let observe = |talking: bool, seed: u64| -> u64 {
        let mut net = make_net(true, seed, 0);
        let alice = net.add_user("alice");
        let bob = net.add_user("bob");
        for i in 0..6 {
            net.add_user(format!("bg{i}"));
        }
        if talking {
            net.dial(alice, bob);
        }
        // Both worlds run the dialing round (idle Alice sends a no-op),
        // keeping the servers' RNG streams aligned so that with equal
        // seeds the *only* difference between worlds is the conversation.
        net.run_dialing_round();
        net.accept_all_invitations();
        net.chain_mut()
            .client_link_mut()
            .attach_tap(Arc::new(Mutex::new(KeepOnly {
                indices: vec![0, 1],
                only_round: None,
            })));
        net.run_conversation_round();
        net.chain()
            .conversation_observables()
            .last()
            .expect("round ran")
            .1
            .m2
    };

    // With identical seeds, the noise is identical, so the gap between
    // worlds is exactly the 1 exchange — buried among ~30 noise pairs.
    let talking = observe(true, 37);
    let idle = observe(false, 37);
    assert!(talking >= 20, "noise dominates: m2={talking}");
    assert_eq!(
        talking - idle,
        1,
        "one-exchange sensitivity, as Figure 6 says"
    );

    // Across different rounds (fresh noise), the distributions overlap:
    // an idle-world sample can exceed a talking-world sample.
    let mut seen_inversion = false;
    for seed in 0..24u64 {
        let t = observe(true, 100 + seed);
        let i = observe(false, 200 + seed);
        if i >= t {
            seen_inversion = true;
            break;
        }
    }
    assert!(
        seen_inversion,
        "sampled noise should make idle-world m2 sometimes exceed talking-world m2"
    );
}

/// §2.1's blocking attack: knock Alice offline and watch the counts.
/// Without noise the m2 drop gives her away; the assertion documents the
/// leak this repo's noise exists to close.
#[test]
fn blocking_attack_reveals_conversation_without_noise() {
    let mut net = make_net(false, 41, 0);
    let alice = net.add_user("alice");
    let bob = net.add_user("bob");
    let _c = net.add_user("c");
    let _d = net.add_user("d");
    net.dial(alice, bob);
    net.run_dialing_round();
    net.accept_all_invitations();

    net.run_conversation_round(); // round 0: alice online
    net.chain_mut()
        .client_link_mut()
        .attach_tap(Arc::new(Mutex::new(BlockClient {
            index: 0, // alice is client 0 on the aggregated link
            from_round: Some(1),
            tombstone_only: false,
        })));
    net.run_conversation_round(); // round 1: alice blocked

    let obs = net.chain().conversation_observables();
    let m2_online = obs[0].1.m2;
    let m2_blocked = obs[1].1.m2;
    assert_eq!(m2_online, 1);
    assert_eq!(
        m2_blocked, 0,
        "blocking Alice kills the pair — visible leak"
    );
}

/// Availability under DoS (§2.3): knocking one user off the network
/// degrades *her* conversation but honest pairs keep exchanging
/// messages. (Edge blocking is equivalent to the victim being offline;
/// in-network blocking additionally garbles reply routing for everyone
/// behind the entry's positional demux — covered by the tap tests.)
#[test]
fn blocking_one_user_does_not_break_others() {
    let mut net = make_net(true, 43, 0);
    let alice = net.add_user("alice");
    let bob = net.add_user("bob");
    let carol = net.add_user("carol");
    let dave = net.add_user("dave");
    net.dial(alice, bob);
    net.run_dialing_round();
    net.dial(carol, dave);
    net.run_dialing_round();
    net.accept_all_invitations();

    net.set_online(alice, false); // adversary blocks Alice at her uplink

    net.queue_message(carol, dave, b"unaffected");
    net.queue_message(bob, alice, b"never arrives");
    for _ in 0..3 {
        net.run_conversation_round();
    }
    assert_eq!(net.received(dave), vec![b"unaffected".to_vec()]);
    assert!(net.received(alice).is_empty());
}
