//! The per-object [`Client`] is the proptested reference; a
//! [`ClientCohort`] is a pure representation change. A cohort of N and
//! N individual clients driven over the same derived RNG schedule
//! (keypairs from `key_rng(seed)` in join order, round randomness from
//! `client_round_rng(seed, round, i)`) must produce byte-identical
//! requests, identical replies and last-server observables through two
//! same-seeded chains, and identical delivered messages afterwards.

use proptest::prelude::*;
use vuvuzela::core::chain::Batch;
use vuvuzela::core::cohort::{client_round_rng, key_rng, ClientCohort};
use vuvuzela::core::{entry, Chain, Client, SystemConfig};
use vuvuzela::crypto::x25519::Keypair;
use vuvuzela::dp::{NoiseDistribution, NoiseMode};

fn cfg(slots: usize, workers: usize) -> SystemConfig {
    SystemConfig {
        chain_len: 2,
        conversation_noise: NoiseDistribution::new(2.0, 1.0),
        dialing_noise: NoiseDistribution::new(2.0, 1.0),
        noise_mode: NoiseMode::Deterministic,
        workers,
        conversation_slots: slots,
        retransmit_after: 2,
        exchange_shards: 3,
    }
}

/// The reference population: individual clients whose keypairs continue
/// the cohort's `key_rng(seed)` stream, sharing one set of DH tables.
fn reference_clients(n: usize, seed: u64, config: &SystemConfig, chain: &Chain) -> Vec<Client> {
    let pks = chain.server_public_keys();
    let mut krng = key_rng(seed);
    let tables = Client::chain_tables(&pks);
    (0..n)
        .map(|i| {
            let mut c = Client::new(
                format!("c{i}"),
                Keypair::generate(&mut krng),
                config.clone(),
            );
            c.set_chain_tables(tables.clone(), &pks);
            c
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Full round trips: requests, replies, observables and delivered
    /// messages all agree between the cohort and the per-object
    /// reference, across worker counts and slot widths.
    #[test]
    fn cohort_round_trip_matches_individual_clients(
        seed in 0u64..10_000,
        n in 2usize..5,
        slots in 1usize..3,
        workers in 1usize..4,
    ) {
        let config = cfg(slots, workers);
        let mut chain_a = Chain::new(config.clone(), seed);
        let mut chain_b = Chain::new(config.clone(), seed);
        let pks = chain_a.server_public_keys();

        let cohort_seed = seed ^ 0xC0C0;
        let mut cohort = ClientCohort::with_own_tables(config.clone(), cohort_seed, &pks);
        cohort.join(n);
        let mut clients = reference_clients(n, cohort_seed, &config, &chain_a);
        for (i, client) in clients.iter().enumerate() {
            prop_assert_eq!(cohort.public_key(i), client.public_key());
        }

        // One mutual conversation (0 ↔ 1) with a message queued each
        // way; everyone else sends fake exchanges.
        let pk0 = clients[0].public_key();
        let pk1 = clients[1].public_key();
        cohort.pair(0, 1).expect("pair");
        cohort.queue_message(0, &pk1, b"soa hello").expect("queue");
        cohort.queue_message(1, &pk0, b"object world").expect("queue");
        clients[0].start_conversation(pk1).expect("start");
        clients[1].start_conversation(pk0).expect("start");
        clients[0].queue_message(&pk1, b"soa hello").expect("queue");
        clients[1].queue_message(&pk0, b"object world").expect("queue");
        prop_assert_eq!(cohort.mutual_pairs(), 1);

        for round in 0..3u64 {
            // Requests: the flat arena equals the multiplexed lists.
            let buf = cohort.build_conversation_round(round);
            let mut per_client = Vec::with_capacity(n);
            for (i, client) in clients.iter_mut().enumerate() {
                let mut rng = client_round_rng(cohort_seed, round, i as u64);
                per_client.push(client.build_conversation_requests(&mut rng, round, &pks));
            }
            let (flat, layout) = entry::multiplex(per_client);
            prop_assert_eq!(buf.to_vecs(), flat.clone(), "round {} requests diverged", round);

            // Same chain seed ⇒ same noise schedule; replies agree.
            let (replies_a, _) = chain_a.run_conversation_round(round, Batch::Flat(buf));
            let (replies_b, _) = chain_b.run_conversation_round(round, flat);
            prop_assert_eq!(&replies_a, &replies_b, "round {} replies diverged", round);

            cohort.handle_conversation_replies(round, &replies_a);
            for (i, client_replies) in entry::demultiplex(&layout, replies_b).into_iter().enumerate()
            {
                clients[i].handle_conversation_replies(round, client_replies);
            }
        }

        // The compromised last server sees the same thing either way.
        prop_assert_eq!(
            chain_a.conversation_observables(),
            chain_b.conversation_observables()
        );

        // Delivered messages agree for every ordered pair, and the
        // queued bodies actually arrived.
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let pk = clients[j].public_key();
                prop_assert_eq!(
                    cohort.delivered_from(i, &pk),
                    clients[i].delivered_from(&pk),
                    "delivered mismatch at {} <- {}", i, j
                );
            }
        }
        prop_assert_eq!(cohort.delivered_from(1, &pk0), vec![b"soa hello".to_vec()]);
        prop_assert_eq!(cohort.delivered_from(0, &pk1), vec![b"object world".to_vec()]);
    }

    /// Dialing rounds: the cohort's all-noop cover traffic is
    /// byte-identical to idle individual clients, and two same-seeded
    /// chains fed either batch report identical invitation observables.
    #[test]
    fn cohort_dialing_matches_individual_clients(
        seed in 0u64..10_000,
        n in 1usize..5,
        workers in 1usize..4,
    ) {
        let config = cfg(1, workers);
        let mut chain_a = Chain::new(config.clone(), seed);
        let mut chain_b = Chain::new(config.clone(), seed);
        let pks = chain_a.server_public_keys();

        let cohort_seed = seed ^ 0xD1A7;
        let mut cohort = ClientCohort::with_own_tables(config.clone(), cohort_seed, &pks);
        cohort.join(n);
        let mut clients = reference_clients(n, cohort_seed, &config, &chain_a);

        let round = 5u64;
        let num_drops = 8u32;
        let buf = cohort.build_dialing_round(round);
        let mut reference = Vec::with_capacity(n);
        for (i, client) in clients.iter_mut().enumerate() {
            let mut rng = client_round_rng(cohort_seed, round, i as u64);
            reference.push(client.build_dial_request(&mut rng, round, num_drops, &pks));
        }
        prop_assert_eq!(buf.to_vecs(), reference.clone(), "dial requests diverged");

        chain_a.run_dialing_round(round, Batch::Flat(buf), num_drops);
        chain_b.run_dialing_round(round, reference, num_drops);
        prop_assert_eq!(chain_a.dialing_observables(), chain_b.dialing_observables());
    }
}
