//! Forced dead-drop collisions (§4.2 footnote 6): two conversations
//! whose key exchanges land on the *same* dead-drop ID in the same
//! round. Honest 128-bit IDs never collide in practice, but an
//! adversary can manufacture the situation (and a reproduction must
//! define it): the exchange pairs the first two arrivals, everyone else
//! gets filler, the round is flagged in `m_many` — and, crucially, a
//! cross-pair delivery of a *sealed* message must never surface the
//! other pair's plaintext, because conversation sealing is keyed per
//! pair (Algorithm 1's double encryption).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vuvuzela::core::{Chain, StreamingChain, SystemConfig};
use vuvuzela::crypto::onion;
use vuvuzela::crypto::x25519::Keypair;
use vuvuzela::dp::{NoiseDistribution, NoiseMode};
use vuvuzela::wire::conversation::{ConversationKeys, ExchangeRequest};
use vuvuzela::wire::MESSAGE_LEN;

fn tiny_config() -> SystemConfig {
    SystemConfig {
        chain_len: 3,
        conversation_noise: NoiseDistribution::new(3.0, 1.0),
        dialing_noise: NoiseDistribution::new(2.0, 1.0),
        noise_mode: NoiseMode::Deterministic,
        workers: 2,
        conversation_slots: 1,
        retransmit_after: 2,
        exchange_shards: 4,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Two real conversations forced onto one dead drop in one round:
    /// the streaming pipeline must agree byte-for-byte with the
    /// sequential reference, the collision must surface as `m_many`,
    /// and no client may ever decrypt the *other* pair's plaintext with
    /// its own conversation keys.
    #[test]
    fn forced_collision_is_reference_equal_and_leak_free(seed in 0u64..10_000) {
        let config = tiny_config();
        let mut sequential = Chain::new(config.clone(), seed);
        let mut streaming = StreamingChain::new(config, seed);
        let pks = sequential.server_public_keys();
        prop_assert_eq!(&pks, &streaming.server_public_keys());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD04_C011);

        // Two pairs: (0 ↔ 1) and (2 ↔ 3).
        let kp: Vec<Keypair> = (0..4).map(|_| Keypair::generate(&mut rng)).collect();
        let keys = [
            ConversationKeys::derive(&kp[0].secret, &kp[0].public, &kp[1].public),
            ConversationKeys::derive(&kp[1].secret, &kp[1].public, &kp[0].public),
            ConversationKeys::derive(&kp[2].secret, &kp[2].public, &kp[3].public),
            ConversationKeys::derive(&kp[3].secret, &kp[3].public, &kp[2].public),
        ];
        let round = 7u64;
        // Both sides of a pair agree on the drop; we force pair 2 onto
        // pair 1's drop — the collision under test.
        let drop = keys[0].drop_id(round);
        prop_assert_eq!(drop, keys[1].drop_id(round));

        let mut bodies = [[0u8; MESSAGE_LEN]; 4];
        for (i, body) in bodies.iter_mut().enumerate() {
            body[0] = i as u8;
            body[1..9].copy_from_slice(&seed.to_le_bytes());
        }
        let mut batch = Vec::new();
        let mut layer_keys = Vec::new();
        for i in 0..4 {
            let request = ExchangeRequest {
                drop,
                sealed_message: keys[i].seal_message(round, &bodies[i]),
            };
            let (onion_bytes, wrap_keys) = onion::wrap(&mut rng, &pks, round, &request.encode());
            batch.push(onion_bytes);
            layer_keys.push(wrap_keys);
        }

        // Sequential reference vs the streaming pipeline.
        let (seq_replies, _) = sequential.run_conversation_round(round, batch.clone());
        let mut streamed = streaming.run_conversation_rounds(vec![(round, batch)]);
        let (stream_replies, _) = streamed.pop().expect("one round scheduled");
        prop_assert_eq!(&seq_replies, &stream_replies);
        let (_, seq_obs) = sequential.conversation_observables()[0];
        let (_, stream_obs) = streaming.chain().conversation_observables()[0];
        prop_assert_eq!(seq_obs, stream_obs);
        // Four accesses to one drop: exactly one many-accessed drop
        // (noise drops are fresh 128-bit IDs, disjoint w.h.p.).
        prop_assert_eq!(seq_obs.m_many, 1);
        // µ = 3 deterministic per noising server: n1 = n2 = 3 → one
        // same-drop pair and leftover + n1 = 4 singletons of noise, so
        // total = 4 client requests + 2 servers × (4 singles + 2 in
        // the pair) = 16 onions.
        prop_assert_eq!(seq_obs.total_requests, 16);

        // Exchange semantics under collision: whichever sealed message
        // a client got back, its own pair keys either fail (filler, or
        // a cross-pair sealed message it cannot read) or yield exactly
        // its partner's plaintext. Pair-2 plaintext never decrypts for
        // pair 1 and vice versa.
        let mut readable = 0usize;
        for i in 0..4 {
            let reply = onion::unwrap_reply_layers(&layer_keys[i], round, &seq_replies[i])
                .expect("reply unwraps");
            if let Ok(plaintext) = keys[i].open_message(round, &reply) {
                readable += 1;
                let partner = i ^ 1;
                prop_assert_eq!(
                    &plaintext[..],
                    &bodies[partner][..],
                    "client {} read something other than its partner's message",
                    i
                );
            }
        }
        // At most one exchange happens on a collided drop (the first
        // two arrivals), so at most 2 clients can read anything.
        prop_assert!(readable <= 2, "readable = {}", readable);
    }

    /// The forced collision is shard-count invariant: the colliding
    /// requests land in one shard by construction (same drop ID ⇒ same
    /// shard), and the sharded exchange's deterministic merge must make
    /// replies and observables byte-identical for shards 1, 2, 3 and 7.
    #[test]
    fn forced_collision_is_shard_count_invariant(seed in 0u64..10_000) {
        let base = tiny_config();
        // Build the batch once; it only depends on the server keys,
        // which are a function of (config minus shards, seed).
        let pks = Chain::new(base.clone(), seed).server_public_keys();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x54A2D);
        let kp: Vec<Keypair> = (0..4).map(|_| Keypair::generate(&mut rng)).collect();
        let keys = [
            ConversationKeys::derive(&kp[0].secret, &kp[0].public, &kp[1].public),
            ConversationKeys::derive(&kp[1].secret, &kp[1].public, &kp[0].public),
            ConversationKeys::derive(&kp[2].secret, &kp[2].public, &kp[3].public),
            ConversationKeys::derive(&kp[3].secret, &kp[3].public, &kp[2].public),
        ];
        let round = 9u64;
        let drop = keys[0].drop_id(round);
        let batch: Vec<Vec<u8>> = keys
            .iter()
            .map(|k| {
                let request = ExchangeRequest {
                    drop,
                    sealed_message: k.seal_message(round, &[0xA5u8; MESSAGE_LEN]),
                };
                onion::wrap(&mut rng, &pks, round, &request.encode()).0
            })
            .collect();

        let mut reference: Option<(Vec<Vec<u8>>, _)> = None;
        for shards in [1usize, 2, 3, 7] {
            let mut config = base.clone();
            config.exchange_shards = shards;
            let mut chain = Chain::new(config, seed);
            let (replies, _) = chain.run_conversation_round(round, batch.clone());
            let (_, obs) = chain.conversation_observables()[0];
            prop_assert_eq!(obs.m_many, 1, "shards = {}", shards);
            match &reference {
                None => reference = Some((replies, obs)),
                Some((want_replies, want_obs)) => {
                    prop_assert_eq!(&replies, want_replies, "shards = {} replies", shards);
                    prop_assert_eq!(&obs, want_obs, "shards = {} observables", shards);
                }
            }
        }
    }

    /// The same collision inside a longer streaming schedule: the
    /// overlapped pipeline must stay byte-identical to the sequential
    /// chain across the surrounding rounds too.
    #[test]
    fn collision_mid_schedule_matches_reference(seed in 0u64..10_000) {
        let config = tiny_config();
        let mut sequential = Chain::new(config.clone(), seed);
        let mut streaming = StreamingChain::new(config, seed);
        let pks = sequential.server_public_keys();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5C4ED);

        let kp: Vec<Keypair> = (0..4).map(|_| Keypair::generate(&mut rng)).collect();
        let keys_a = ConversationKeys::derive(&kp[0].secret, &kp[0].public, &kp[1].public);
        let keys_c = ConversationKeys::derive(&kp[2].secret, &kp[2].public, &kp[3].public);
        let collided = keys_a.drop_id(11);

        let noise_round = |round: u64, rng: &mut StdRng, pks: &[_]| -> Vec<Vec<u8>> {
            (0..3)
                .map(|_| {
                    let payload = ExchangeRequest::noise(rng).encode();
                    onion::wrap(rng, pks, round, &payload).0
                })
                .collect()
        };
        let collision_batch: Vec<Vec<u8>> = [&keys_a, &keys_c]
            .iter()
            .flat_map(|k| {
                let request = ExchangeRequest {
                    drop: collided,
                    sealed_message: k.seal_message(11, &[0x5Au8; MESSAGE_LEN]),
                };
                vec![onion::wrap(&mut rng, &pks, 11, &request.encode()).0]
            })
            .collect();

        let rounds = vec![
            (10u64, noise_round(10, &mut rng, &pks)),
            (11u64, collision_batch),
            (12u64, noise_round(12, &mut rng, &pks)),
        ];
        let streamed = streaming.run_conversation_rounds(rounds.clone());
        for ((round, batch), (got, _)) in rounds.into_iter().zip(streamed) {
            let (want, _) = sequential.run_conversation_round(round, batch);
            prop_assert_eq!(got, want, "round {} diverged", round);
        }
        let mut stream_obs: Vec<_> = streaming.chain().conversation_observables().to_vec();
        stream_obs.sort_by_key(|(r, _)| *r);
        prop_assert_eq!(&stream_obs[..], sequential.conversation_observables());
    }
}
