//! End-to-end integration tests: full dial → converse lifecycles across
//! the real chain, exercising every crate together.

use vuvuzela::core::testkit::TestNet;
use vuvuzela::dp::NoiseMode;

fn net(servers: usize, seed: u64) -> TestNet {
    TestNet::builder()
        .servers(servers)
        .noise_mu(8.0)
        .dialing_mu(4.0)
        .seed(seed)
        .build()
}

#[test]
fn full_lifecycle_dial_accept_converse() {
    let mut net = net(3, 1);
    let alice = net.add_user("alice");
    let bob = net.add_user("bob");

    net.dial(alice, bob);
    net.run_dialing_round();
    assert_eq!(
        net.client(bob).pending_invitations().len(),
        1,
        "bob got exactly one invitation"
    );
    net.accept_all_invitations();

    net.queue_message(alice, bob, b"first");
    net.run_conversation_round();
    net.queue_message(bob, alice, b"second");
    net.run_conversation_round();

    assert_eq!(net.received(bob), vec![b"first".to_vec()]);
    assert_eq!(net.received(alice), vec![b"second".to_vec()]);
}

#[test]
fn works_for_every_chain_length_paper_evaluates() {
    // Figure 11 sweeps 1..6 servers; message flow must hold for each.
    for servers in 1..=6 {
        let mut net = net(servers, servers as u64);
        let alice = net.add_user("alice");
        let bob = net.add_user("bob");
        net.dial(alice, bob);
        net.run_dialing_round();
        net.accept_all_invitations();
        net.queue_message(alice, bob, b"ping");
        net.run_conversation_round();
        assert_eq!(
            net.received(bob),
            vec![b"ping".to_vec()],
            "chain length {servers}"
        );
    }
}

#[test]
fn many_pairs_converse_simultaneously() {
    let mut net = net(3, 7);
    let users: Vec<_> = (0..10).map(|i| net.add_user(format!("user{i}"))).collect();

    // 5 disjoint pairs.
    for pair in users.chunks(2) {
        net.dial(pair[0], pair[1]);
    }
    net.run_dialing_round();
    net.accept_all_invitations();

    for (i, pair) in users.chunks(2).enumerate() {
        net.queue_message(pair[0], pair[1], format!("msg-{i}").as_bytes());
    }
    net.run_conversation_round();

    for (i, pair) in users.chunks(2).enumerate() {
        assert_eq!(
            net.received(pair[1]),
            vec![format!("msg-{i}").into_bytes()],
            "pair {i}"
        );
    }
}

#[test]
fn long_conversation_stays_ordered_under_pipelining() {
    let mut net = net(3, 9);
    let alice = net.add_user("alice");
    let bob = net.add_user("bob");
    net.dial(alice, bob);
    net.run_dialing_round();
    net.accept_all_invitations();

    let messages: Vec<Vec<u8>> = (0..12u8).map(|i| vec![b'#', i]).collect();
    for m in &messages {
        net.queue_message(alice, bob, m);
    }
    // Window is 4: pipelined over several rounds.
    for _ in 0..16 {
        net.run_conversation_round();
    }
    assert_eq!(net.received(bob), messages);
}

#[test]
fn retransmission_survives_multi_round_outage() {
    let mut net = net(3, 11);
    let alice = net.add_user("alice");
    let bob = net.add_user("bob");
    net.dial(alice, bob);
    net.run_dialing_round();
    net.accept_all_invitations();

    net.queue_message(alice, bob, b"resilient");
    net.set_online(bob, false);
    for _ in 0..5 {
        net.run_conversation_round();
    }
    assert!(net.received(bob).is_empty());
    net.set_online(bob, true);
    for _ in 0..4 {
        net.run_conversation_round();
    }
    assert_eq!(net.received(bob), vec![b"resilient".to_vec()]);
}

#[test]
fn bidirectional_conversation_interleaves() {
    let mut net = net(2, 13);
    let alice = net.add_user("alice");
    let bob = net.add_user("bob");
    net.dial(alice, bob);
    net.run_dialing_round();
    net.accept_all_invitations();

    for i in 0..4u8 {
        net.queue_message(alice, bob, &[b'a', i]);
        net.queue_message(bob, alice, &[b'b', i]);
    }
    for _ in 0..6 {
        net.run_conversation_round();
    }
    assert_eq!(
        net.received(bob),
        (0..4u8).map(|i| vec![b'a', i]).collect::<Vec<_>>()
    );
    assert_eq!(
        net.received(alice),
        (0..4u8).map(|i| vec![b'b', i]).collect::<Vec<_>>()
    );
}

#[test]
fn dialing_multiple_rounds_reaches_multiple_callees() {
    let mut net = net(3, 17);
    let alice = net.add_user("alice");
    let bob = net.add_user("bob");
    let carol = net.add_user("carol");

    // Alice only has one slot by default — ending one conversation frees
    // the slot for the next (§5: "a user may end one conversation to
    // make room for another").
    net.dial(alice, bob);
    net.run_dialing_round();
    net.accept_all_invitations();
    net.queue_message(alice, bob, b"to bob");
    net.run_conversation_round();
    assert_eq!(net.received(bob), vec![b"to bob".to_vec()]);

    let bob_pk = net.client(bob).public_key();
    net.client_mut(alice)
        .end_conversation(&bob_pk)
        .expect("end");
    net.dial(alice, carol);
    net.run_dialing_round();
    net.accept_all_invitations();
    net.queue_message(alice, carol, b"to carol");
    net.run_conversation_round();
    assert_eq!(net.received(carol), vec![b"to carol".to_vec()]);
}

#[test]
fn sampled_noise_mode_also_delivers() {
    // Everything above uses deterministic noise; production samples.
    let mut net = TestNet::builder()
        .servers(3)
        .noise_mu(8.0)
        .dialing_mu(4.0)
        .noise_mode(NoiseMode::Sampled)
        .seed(19)
        .build();
    let alice = net.add_user("alice");
    let bob = net.add_user("bob");
    net.dial(alice, bob);
    net.run_dialing_round();
    net.accept_all_invitations();
    net.queue_message(alice, bob, b"sampled");
    net.run_conversation_round();
    assert_eq!(net.received(bob), vec![b"sampled".to_vec()]);
}

#[test]
fn declined_invitation_never_connects() {
    let mut net = net(3, 23);
    let alice = net.add_user("alice");
    let bob = net.add_user("bob");
    net.dial(alice, bob);
    net.run_dialing_round();

    let alice_pk = net.client(alice).public_key();
    net.client_mut(bob).decline_invitation(&alice_pk);

    // Alice (who pre-entered the conversation) sends into the void: Bob
    // never joins the drop, so nothing is delivered to him.
    net.queue_message(alice, bob, b"hello?");
    for _ in 0..3 {
        net.run_conversation_round();
    }
    assert!(net.received(bob).is_empty());
    assert!(net.received(alice).is_empty());
}
