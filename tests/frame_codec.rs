//! Property tests over the wire frame codec and the framed TCP reader:
//! arbitrary frames round-trip, truncation never panics, and oversized
//! length prefixes are rejected before any body is read.

use proptest::prelude::*;
use std::io::Cursor;
use vuvuzela::net::tcp::{read_frame, write_frame};
use vuvuzela::net::{Error, LinkId};
use vuvuzela::wire::{BatchFrame, Frame, FrameError, Hello, RoundId, RoundType, MAX_FRAME_LEN};

fn link_from(selector: u8, index: u32) -> LinkId {
    match selector % 4 {
        0 => LinkId::Clients,
        1 => LinkId::Hop(index),
        2 => LinkId::Cdn,
        _ => LinkId::Client(index),
    }
}

/// Builds one arbitrary frame from primitive draws (the vendored
/// proptest has no tuple/oneof combinators).
#[allow(clippy::too_many_arguments)]
fn frame_from(
    kind: u8,
    link_selector: u8,
    link_index: u32,
    digest: [u8; 32],
    round: u64,
    flags: u8,
    num_drops: u32,
    stride: usize,
    slack: usize,
    count: usize,
    trailer: Vec<u8>,
) -> Frame {
    let link = link_from(link_selector, link_index);
    match kind % 3 {
        0 => Frame::Hello(Hello {
            link,
            config_digest: digest,
        }),
        1 => {
            let width = stride - slack.min(stride);
            Frame::Batch(BatchFrame {
                link,
                round: RoundId(round),
                round_type: if flags & 1 == 0 {
                    RoundType::Conversation
                } else {
                    RoundType::Dialing
                },
                num_drops,
                backward: flags & 2 != 0,
                stride: stride as u32,
                width: width as u32,
                count: count as u32,
                payload: vec![0xA7; stride * count],
                trailer,
            })
        }
        _ => Frame::Bye,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every encodable frame decodes back to itself, both through the
    /// raw codec and through the length-prefixed TCP framing.
    #[test]
    fn frames_roundtrip(
        kind in 0u8..3,
        link_selector in any::<u8>(),
        link_index in 0u32..16,
        digest in any::<[u8; 32]>(),
        round in any::<u64>(),
        flags in any::<u8>(),
        num_drops in 0u32..64,
        stride in 1usize..32,
        slack in 0usize..8,
        count in 0usize..32,
        trailer in collection::vec(any::<u8>(), 0..48),
    ) {
        let frame = frame_from(
            kind, link_selector, link_index, digest, round, flags, num_drops,
            stride, slack, count, trailer,
        );
        let body = frame.encode();
        prop_assert_eq!(body.len(), frame.encoded_len());
        prop_assert_eq!(Frame::decode(&body).expect("decodes"), frame.clone());

        let mut wire = Vec::new();
        write_frame(&mut wire, LinkId::Clients, &frame).expect("writes");
        let mut cursor = Cursor::new(wire);
        prop_assert_eq!(read_frame(&mut cursor, LinkId::Clients).expect("reads"), frame);
        prop_assert!(matches!(
            read_frame(&mut cursor, LinkId::Clients),
            Err(Error::Disconnected { .. })
        ));
    }

    /// Truncating an encoded frame at any point yields a decode error,
    /// never a panic or a bogus success.
    #[test]
    fn truncation_never_panics(
        kind in 0u8..3,
        stride in 1usize..32,
        count in 0usize..32,
        trailer in collection::vec(any::<u8>(), 0..48),
        cut in 0usize..4096,
    ) {
        let frame = frame_from(
            kind, 1, 3, [7; 32], 12, 1, 5, stride, 0, count, trailer,
        );
        let body = frame.encode();
        let cut = cut % body.len().max(1);
        prop_assert!(Frame::decode(&body[..cut]).is_err());
    }

    /// Flipping any single byte of an encoded frame either still decodes
    /// (payload/trailer bytes are opaque) or errors — it never panics.
    #[test]
    fn corruption_never_panics(
        kind in 0u8..3,
        stride in 1usize..32,
        count in 0usize..32,
        at in 0usize..4096,
        xor in 1u8..=255,
    ) {
        let frame = frame_from(
            kind, 0, 0, [9; 32], 3, 2, 0, stride, 1, count, vec![1, 2],
        );
        let mut body = frame.encode();
        let at = at % body.len();
        body[at] ^= xor;
        let _ = Frame::decode(&body);
    }

    /// Length prefixes above MAX_FRAME_LEN are rejected on the prefix
    /// alone — no body allocation, no read past the prefix.
    #[test]
    fn oversized_prefix_rejected(extra in 1u64..=u64::from(u32::MAX) - MAX_FRAME_LEN as u64) {
        let len = MAX_FRAME_LEN as u64 + extra;
        let mut cursor = Cursor::new((len as u32).to_le_bytes().to_vec());
        prop_assert!(matches!(
            read_frame(&mut cursor, LinkId::Hop(0)),
            Err(Error::Frame { source: FrameError::Oversized { .. }, .. })
        ));
    }
}
