//! Property tests: the flat `RoundBuffer` round pipeline is byte-identical
//! to the per-`Vec` reference implementation.
//!
//! The zero-copy refactor (in-place onion crypto, index-remapped shuffle,
//! arena noise generation) must not change a single observable byte:
//! both paths consume the server RNG in the same order, so for equal
//! seeds a whole forward + backward pass has to agree exactly — across
//! chain lengths, batch sizes, noise levels and adversarially corrupted
//! onions.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vuvuzela::core::roundbuf::RoundBuffer;
use vuvuzela::core::server::{MixServer, RoundKind};
use vuvuzela::core::SystemConfig;
use vuvuzela::crypto::onion;
use vuvuzela::crypto::x25519::Keypair;
use vuvuzela::dp::{NoiseDistribution, NoiseMode};
use vuvuzela::wire::conversation::ExchangeRequest;

fn config(chain_len: usize, mu: f64) -> SystemConfig {
    SystemConfig {
        chain_len,
        conversation_noise: NoiseDistribution::new(mu, 1.0),
        dialing_noise: NoiseDistribution::new(2.0, 1.0),
        noise_mode: NoiseMode::Deterministic,
        workers: 3,
        conversation_slots: 1,
        retransmit_after: 2,
        exchange_shards: 4,
    }
}

/// Builds one chain twice (identical seeds): one instance driven through
/// the reference path, one through the flat path.
fn twin_chains(chain_len: usize, mu: f64, seed: u64) -> (Vec<MixServer>, Vec<MixServer>) {
    let build = || {
        let mut rng = StdRng::seed_from_u64(seed);
        let keypairs: Vec<Keypair> = (0..chain_len)
            .map(|_| Keypair::generate(&mut rng))
            .collect();
        let publics: Vec<_> = keypairs.iter().map(|kp| kp.public).collect();
        keypairs
            .into_iter()
            .enumerate()
            .map(|(i, kp)| {
                MixServer::new(
                    i,
                    chain_len,
                    kp,
                    publics[i + 1..].to_vec(),
                    config(chain_len, mu),
                    seed.wrapping_add(1 + i as u64),
                )
            })
            .collect::<Vec<_>>()
    };
    (build(), build())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Full forward + backward pass, arbitrary shapes and corruption.
    #[test]
    fn flat_pipeline_equals_reference(
        chain_len in 1usize..=3,
        clients in 0usize..12,
        mu in 0u32..6,
        seed in any::<u64>(),
        corrupt in proptest::collection::vec(any::<(u16, u8)>(), 0..3),
    ) {
        let round = 3u64;
        let (mut flat, mut reference) = twin_chains(chain_len, f64::from(mu), seed);
        let chain_pks: Vec<_> = flat.iter().map(MixServer::public_key).collect();

        // Client onions (some corrupted in flight).
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00C0FFEE);
        let mut onions: Vec<Vec<u8>> = (0..clients)
            .map(|_| {
                let payload = ExchangeRequest::noise(&mut rng).encode();
                onion::wrap(&mut rng, &chain_pks, round, &payload).0
            })
            .collect();
        for &(pos, bit) in &corrupt {
            if !onions.is_empty() {
                let i = pos as usize % onions.len();
                let len = onions[i].len();
                onions[i][pos as usize % len] ^= 1 << (bit % 8);
            }
        }

        // Forward through every server, comparing per hop.
        let width = onion::wrapped_len(vuvuzela::wire::EXCHANGE_REQUEST_LEN, chain_len);
        let (mut buf, _) = RoundBuffer::from_vecs(&onions, width, width);
        let mut vecs = onions;
        for (hop, (f, r)) in flat.iter_mut().zip(reference.iter_mut()).enumerate() {
            buf = f.forward_buf(round, RoundKind::Conversation, buf);
            vecs = r.forward_reference(round, RoundKind::Conversation, vecs);
            prop_assert_eq!(buf.to_vecs(), vecs.clone(), "forward hop {} diverged", hop);
            prop_assert_eq!(f.malformed_replaced, r.malformed_replaced, "hop {}", hop);
        }

        // Echo the last server's payloads back as replies.
        let reply_width = buf.width();
        let reply_stride = reply_width + chain_len * onion::REPLY_LAYER_OVERHEAD;
        let mut reply_buf = RoundBuffer::new(reply_stride, reply_width);
        for i in 0..buf.len() {
            let bytes = buf.slot(i);
            reply_buf.push_with(|slot| slot.copy_from_slice(bytes));
        }
        let mut reply_vecs = vecs;
        for (hop, (f, r)) in flat
            .iter_mut()
            .zip(reference.iter_mut())
            .enumerate()
            .rev()
        {
            reply_buf = f.backward_buf(round, reply_buf);
            reply_vecs = r.backward_reference(round, reply_vecs);
            prop_assert_eq!(reply_buf.to_vecs(), reply_vecs.clone(), "backward hop {} diverged", hop);
        }
    }

    /// Dialing rounds take the other noise recipe; the paths must still
    /// agree (forward-only, as dialing rounds are).
    #[test]
    fn dialing_forward_equals_reference(
        chain_len in 1usize..=3,
        clients in 0usize..8,
        num_drops in 1u32..4,
        seed in any::<u64>(),
    ) {
        let round = 9u64;
        let kind = RoundKind::Dialing { num_drops };
        let (mut flat, mut reference) = twin_chains(chain_len, 2.0, seed);
        let chain_pks: Vec<_> = flat.iter().map(MixServer::public_key).collect();

        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1A1);
        let mut vecs: Vec<Vec<u8>> = (0..clients)
            .map(|_| {
                let payload = vuvuzela::wire::dialing::DialRequest::noop(&mut rng).encode();
                onion::wrap(&mut rng, &chain_pks, round, &payload).0
            })
            .collect();

        let width = onion::wrapped_len(vuvuzela::wire::DIAL_REQUEST_LEN, chain_len);
        let (mut buf, _) = RoundBuffer::from_vecs(&vecs, width, width);
        for (hop, (f, r)) in flat.iter_mut().zip(reference.iter_mut()).enumerate() {
            buf = f.forward_buf(round, kind, buf);
            vecs = r.forward_reference(round, kind, vecs);
            prop_assert_eq!(buf.to_vecs(), vecs.clone(), "dialing hop {} diverged", hop);
        }
    }
}
