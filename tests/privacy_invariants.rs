//! Integration tests for the privacy invariants of §3.2/§4.1/§6.1:
//! fixed sizes, activity-independent traffic, correct noise accounting,
//! and indistinguishability of the adversary's view across worlds.

use parking_lot::Mutex;
use std::sync::Arc;
use vuvuzela::adversary::taps::SizeRecorder;
use vuvuzela::core::testkit::TestNet;
use vuvuzela::net::Tap;

fn tapped_net(seed: u64) -> (TestNet, Vec<Arc<Mutex<SizeRecorder>>>) {
    let mut net = TestNet::builder()
        .servers(3)
        .noise_mu(6.0)
        .dialing_mu(3.0)
        .seed(seed)
        .build();
    let mut taps = Vec::new();
    {
        let chain = net.chain_mut();
        let tap = Arc::new(Mutex::new(SizeRecorder::default()));
        taps.push(tap.clone());
        chain.client_link_mut().attach_tap(tap);
        for i in 0..3 {
            let tap = Arc::new(Mutex::new(SizeRecorder::default()));
            taps.push(tap.clone());
            let dyn_tap: Arc<Mutex<dyn Tap>> = tap.clone();
            chain.link_mut(i).attach_tap(dyn_tap);
        }
    }
    (net, taps)
}

/// "Vuvuzela ensures that message sizes ... are independent of user
/// activity" — every batch on every link is single-sized.
#[test]
fn all_link_traffic_is_uniform_size() {
    let (mut net, taps) = tapped_net(1);
    let alice = net.add_user("alice");
    let bob = net.add_user("bob");
    let _idle = net.add_user("idle");

    net.dial(alice, bob);
    net.run_dialing_round();
    net.accept_all_invitations();
    net.queue_message(alice, bob, b"payload");
    net.run_conversation_round();
    net.run_conversation_round();

    for (i, tap) in taps.iter().enumerate() {
        let guard = tap.lock();
        assert!(!guard.batches.is_empty(), "tap {i} saw traffic");
        for (round, forward, sizes) in &guard.batches {
            let distinct: std::collections::HashSet<usize> = sizes.iter().copied().collect();
            assert!(
                distinct.len() <= 1,
                "tap {i} round {round} forward={forward}: mixed sizes {distinct:?}"
            );
        }
    }
}

/// The adversary's byte-level view is *identical in shape* whether the
/// two users converse or idle: same batch counts, same sizes.
#[test]
fn traffic_shape_is_independent_of_conversations() {
    let observe = |talking: bool, seed: u64| -> Vec<(u64, bool, Vec<usize>)> {
        let (mut net, taps) = tapped_net(seed);
        let alice = net.add_user("alice");
        let bob = net.add_user("bob");
        if talking {
            net.dial(alice, bob);
        }
        net.run_dialing_round();
        net.accept_all_invitations();
        if talking {
            net.queue_message(alice, bob, b"secret");
        }
        net.run_conversation_round();
        // Collapse all taps into one trace of (round, dir, sizes).
        taps.iter().flat_map(|t| t.lock().batches.clone()).collect()
    };

    // Same seed ⇒ same noise; only Alice/Bob's actions differ.
    let talking = observe(true, 42);
    let idle = observe(false, 42);
    assert_eq!(talking.len(), idle.len(), "same number of transfers");
    for (a, b) in talking.iter().zip(idle.iter()) {
        assert_eq!(a.0, b.0, "round");
        assert_eq!(a.1, b.1, "direction");
        assert_eq!(a.2.len(), b.2.len(), "batch size");
        assert_eq!(
            a.2.first(),
            b.2.first(),
            "message size (round {}, forward {})",
            a.0,
            a.1
        );
    }
}

/// Deterministic noise mode produces exactly the §8.2 accounting:
/// each non-last server adds 2µ requests.
#[test]
fn noise_accounting_matches_paper() {
    let mu = 10.0;
    let mut net = TestNet::builder().servers(3).noise_mu(mu).seed(3).build();
    let _u1 = net.add_user("u1");
    let _u2 = net.add_user("u2");
    net.run_conversation_round();

    let (_, obs) = net.chain().conversation_observables()[0];
    // 2 users + 2 noising servers × 2µ.
    assert_eq!(obs.total_requests, 2 + 2 * (2.0 * mu) as u64);
    // All noise: µ singles + µ/2 pairs per noising server; users idle → 2 lone.
    assert_eq!(obs.m1, 2 * (mu as u64) + 2);
    assert_eq!(obs.m2, 2 * (mu as u64 / 2));
    assert_eq!(obs.m_many, 0, "honest clients never collide");
}

/// The observable-level model used for attack statistics agrees exactly
/// with the real chain under deterministic noise.
#[test]
fn observable_model_cross_validates_against_chain() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vuvuzela::adversary::model::{ObservableModel, RoundTruth};
    use vuvuzela::dp::{NoiseDistribution, NoiseMode};

    let mu = 8.0;
    let mut net = TestNet::builder().servers(3).noise_mu(mu).seed(5).build();
    let alice = net.add_user("alice");
    let bob = net.add_user("bob");
    let _lone = net.add_user("lone");
    net.dial(alice, bob);
    net.run_dialing_round();
    net.accept_all_invitations();
    net.run_conversation_round();
    let (_, chain_obs) = *net
        .chain()
        .conversation_observables()
        .last()
        .expect("round");

    let model = ObservableModel {
        noising_servers: 2,
        noise: NoiseDistribution::new(mu, 1.0),
        mode: NoiseMode::Deterministic,
    };
    let mut rng = StdRng::seed_from_u64(0);
    let model_obs = model.sample(
        &mut rng,
        RoundTruth {
            talking_pairs: 1,
            lone_users: 1,
        },
    );
    assert_eq!(chain_obs.m1, model_obs.m1);
    assert_eq!(chain_obs.m2, model_obs.m2);
}

/// And in `Sampled` mode the agreement is byte-identical, not just
/// distributional: feeding the model the very words each noising server
/// consumed for its `n1`/`n2` draws (its round RNG's first two) must
/// reproduce the chain's observables exactly. An odd µ makes the
/// leftover-singleton path (the Algorithm 2 pairing fix) load-bearing —
/// odd `n2` draws occur with probability ≈ ½ per server.
#[test]
fn observable_model_cross_validates_in_sampled_mode() {
    use rand::RngCore;
    use vuvuzela::adversary::model::{ObservableModel, RoundTruth};
    use vuvuzela::core::chain::server_round_rng;
    use vuvuzela::dp::{NoiseDistribution, NoiseMode};

    /// Replays a recorded word stream — the shared noise stream between
    /// the real deployment and the model.
    struct Replay(std::vec::IntoIter<u64>);
    impl RngCore for Replay {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next().expect("replay stream exhausted")
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }

    let mu = 7.0;
    let seed = 0xA11CE_u64;
    for round_seed in 0..8u64 {
        let mut net = TestNet::builder()
            .servers(3)
            .noise_mu(mu)
            .noise_mode(NoiseMode::Sampled)
            .seed(seed.wrapping_add(round_seed))
            .build();
        let alice = net.add_user("alice");
        let bob = net.add_user("bob");
        let _lone = net.add_user("lone");
        net.dial(alice, bob);
        net.run_dialing_round();
        net.accept_all_invitations();
        net.run_conversation_round();
        let (round, chain_obs) = *net
            .chain()
            .conversation_observables()
            .last()
            .expect("round");

        // Noising servers are every position but the last; each consumes
        // its n1 then n2 uniform as the first two words of its round RNG.
        let mut words = Vec::new();
        for position in 0..2 {
            let mut rng = server_round_rng(seed.wrapping_add(round_seed), position, round);
            words.push(rng.next_u64());
            words.push(rng.next_u64());
        }
        let model = ObservableModel {
            noising_servers: 2,
            // Mirror the builder's b = max(µ/20, 0.5) derivation.
            noise: NoiseDistribution::new(mu, (mu / 20.0).max(0.5)),
            mode: NoiseMode::Sampled,
        };
        let model_obs = model.sample(
            &mut Replay(words.into_iter()),
            RoundTruth {
                talking_pairs: 1,
                lone_users: 1,
            },
        );
        assert_eq!(
            chain_obs, model_obs,
            "seed {round_seed}: chain and model disagree on shared noise"
        );
    }
}

/// Dialing: every drop gets noise from every server — even drops nobody
/// wrote a real invitation to (§5.3).
#[test]
fn dialing_noise_covers_unused_drops() {
    let mu_dial = 5.0;
    let mut net = TestNet::builder()
        .servers(3)
        .noise_mu(4.0)
        .dialing_mu(mu_dial)
        .invitation_drops(4)
        .seed(7)
        .build();
    let _a = net.add_user("a");
    let _b = net.add_user("b");
    net.run_dialing_round(); // nobody dials

    let (_, obs) = &net.chain().dialing_observables()[0];
    assert_eq!(obs.counts.len(), 4);
    for (i, &count) in obs.counts.iter().enumerate() {
        assert_eq!(
            count,
            3 * mu_dial as u64,
            "drop {i} must hold exactly 3 servers × µ noise"
        );
    }
    // The two idle users wrote to the no-op drop.
    assert_eq!(obs.noop_writes, 2);
}

/// Garbage and truncated onions must never break the round for honest
/// users (availability under client misbehaviour, §2.3).
#[test]
fn malformed_clients_cannot_break_honest_ones() {
    use vuvuzela::net::Tap;
    struct GarbageInjector;
    impl Tap for GarbageInjector {
        fn intercept(&mut self, ctx: &vuvuzela::net::TapContext, batch: &mut Vec<Vec<u8>>) {
            if matches!(ctx.direction, vuvuzela::net::Direction::Forward) {
                batch.push(vec![0xFF; 100]); // junk "request"
                batch.push(Vec::new());
            }
        }
    }

    let mut net = TestNet::builder().servers(3).noise_mu(4.0).seed(9).build();
    let alice = net.add_user("alice");
    let bob = net.add_user("bob");
    net.chain_mut()
        .client_link_mut()
        .attach_tap(Arc::new(Mutex::new(GarbageInjector)));

    net.dial(alice, bob);
    net.run_dialing_round();
    net.accept_all_invitations();
    net.queue_message(alice, bob, b"still works");
    net.run_conversation_round();
    assert_eq!(net.received(bob), vec![b"still works".to_vec()]);
}

/// `TestNet::set_online` audit (cover-traffic requirement, §3.2/§4.2):
/// a client going offline is itself observable — the connected-client
/// set is public — but it must not change the observable *stream* of
/// its former partner or of idle bystanders. Before, during and after
/// Bob's absence, Alice and the idle user each emit exactly one onion
/// per round of exactly the same width; the only change on the wire is
/// Bob's entry disappearing.
#[test]
fn offline_peer_leaves_partner_stream_unchanged() {
    let (mut net, taps) = tapped_net(11);
    let client_tap = taps[0].clone();
    let alice = net.add_user("alice");
    let bob = net.add_user("bob");
    let _idle = net.add_user("idle");

    net.dial(alice, bob);
    net.run_dialing_round();
    net.accept_all_invitations();
    // Alice keeps a message in flight the whole time, so her slot is
    // maximally "active" — which must be invisible.
    net.queue_message(alice, bob, b"before");
    net.run_conversation_round();
    net.run_conversation_round();
    net.set_online(bob, false);
    assert!(!net.is_online(bob));
    net.queue_message(alice, bob, b"during"); // will retransmit into the void
    net.run_conversation_round();
    net.run_conversation_round();
    net.set_online(bob, true);
    net.run_conversation_round();
    net.run_conversation_round();

    // The clients→entry tap saw every per-round forward batch. Batch
    // order is client order, so Alice is entry 0 in every round.
    let guard = client_tap.lock();
    let forward: Vec<&(u64, bool, Vec<usize>)> = guard
        .batches
        .iter()
        .filter(|(_, fwd, sizes)| *fwd && !sizes.is_empty())
        .collect();
    // 1 dialing + 6 conversation rounds.
    assert_eq!(forward.len(), 7);
    let conversation: Vec<_> = forward[1..].to_vec();
    let width = conversation[0].2[0];
    for (round, _, sizes) in &conversation {
        assert!(
            sizes.iter().all(|&s| s == width),
            "round {round}: mixed sizes {sizes:?}"
        );
        assert_eq!(
            sizes[0], width,
            "round {round}: Alice's onion width changed"
        );
    }
    // Exactly Bob's entry disappears while he is offline; Alice and
    // the idle user never change their per-round emission count.
    let counts: Vec<usize> = conversation.iter().map(|(_, _, s)| s.len()).collect();
    assert_eq!(counts, vec![3, 3, 2, 2, 3, 3]);

    // The dead-drop histogram stays noise-covered through the
    // transition: totals change by exactly Bob's one request, and the
    // pair access silently becomes a single access.
    let obs: Vec<_> = net
        .chain()
        .conversation_observables()
        .iter()
        .map(|(_, o)| *o)
        .collect();
    // µ = 6 → each of 2 noising servers adds 6 singles + 3 pairs.
    assert_eq!(obs[0].m2, 2 * 3 + 1, "online: real pair present");
    assert_eq!(obs[0].m1, 2 * 6 + 1, "online: idle user is a single");
    assert_eq!(obs[2].m2, 2 * 3, "offline: the pair is gone...");
    assert_eq!(obs[2].m1, 2 * 6 + 2, "...Alice and idle are singles");
    assert_eq!(obs[4].m2, 2 * 3 + 1, "rejoined: pair restored");
    for o in &obs {
        assert_eq!(o.m_many, 0);
    }

    // And the conversation itself survives the outage via retransmission.
    drop(guard);
    assert_eq!(
        net.received(bob),
        vec![b"before".to_vec(), b"during".to_vec()]
    );
}
