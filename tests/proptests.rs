//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vuvuzela::crypto::x25519::{Keypair, SecretKey};
use vuvuzela::crypto::{aead, onion, sealedbox};
use vuvuzela::wire::conversation::{ConversationKeys, ExchangeRequest};
use vuvuzela::wire::message::{FramedMessage, MAX_BODY_LEN};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// X25519 key exchange commutes for arbitrary secret keys.
    #[test]
    fn dh_commutes(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let sk_a = SecretKey::from_bytes(a);
        let sk_b = SecretKey::from_bytes(b);
        let pk_a = sk_a.public_key();
        let pk_b = sk_b.public_key();
        prop_assert_eq!(
            sk_a.diffie_hellman(&pk_b).0,
            sk_b.diffie_hellman(&pk_a).0
        );
    }

    /// AEAD round-trips arbitrary payloads and AAD.
    #[test]
    fn aead_roundtrip(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let sealed = aead::seal(&key, &nonce, &aad, &payload);
        prop_assert_eq!(sealed.len(), payload.len() + aead::TAG_LEN);
        let opened = aead::open(&key, &nonce, &aad, &sealed).expect("authentic");
        prop_assert_eq!(opened, payload);
    }

    /// Flipping any single bit of a sealed AEAD box breaks authentication.
    #[test]
    fn aead_any_bitflip_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        flip_byte in 0usize..80,
        flip_bit in 0u8..8,
    ) {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let mut sealed = aead::seal(&key, &nonce, b"", &payload);
        let index = flip_byte % sealed.len();
        sealed[index] ^= 1 << flip_bit;
        prop_assert!(aead::open(&key, &nonce, b"", &sealed).is_err());
    }

    /// Onion wrap/peel round-trips for every chain length the paper
    /// evaluates (1–6) and arbitrary payloads.
    #[test]
    fn onion_roundtrip(
        chain_len in 1usize..=6,
        round in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let servers: Vec<Keypair> = (0..chain_len).map(|_| Keypair::generate(&mut rng)).collect();
        let pks: Vec<_> = servers.iter().map(|kp| kp.public).collect();

        let (mut onion_bytes, _keys) = onion::wrap(&mut rng, &pks, round, &payload);
        prop_assert_eq!(onion_bytes.len(), onion::wrapped_len(payload.len(), chain_len));
        for kp in &servers {
            let (_, inner) = onion::peel(&kp.secret, &kp.public, round, &onion_bytes)
                .expect("peels");
            onion_bytes = inner;
        }
        prop_assert_eq!(&onion_bytes, &payload);

        // Reply path symmetry: peel a fresh onion to capture layer keys,
        // wrap the reply innermost-first as the chain does, and unwrap
        // with the client's copies.
        let (mut fresh, client_keys) = onion::wrap(&mut rng, &pks, round, &payload);
        let mut server_keys = Vec::new();
        for kp in &servers {
            let (k, inner) = onion::peel(&kp.secret, &kp.public, round, &fresh).expect("peel");
            server_keys.push(k);
            fresh = inner;
        }
        let mut wrapped = payload.clone();
        for k in server_keys.iter().rev() {
            wrapped = onion::wrap_reply_layer(k, round, &wrapped);
        }
        let reply = onion::unwrap_reply_layers(&client_keys, round, &wrapped).expect("unwrap");
        prop_assert_eq!(&reply, &payload);
    }

    /// Sealed boxes round-trip and never open under the wrong key.
    #[test]
    fn sealedbox_roundtrip(
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let recipient = Keypair::generate(&mut rng);
        let wrong = Keypair::generate(&mut rng);
        let boxed = sealedbox::seal(&mut rng, &recipient.public, &payload);
        prop_assert_eq!(
            sealedbox::open(&recipient.secret, &recipient.public, &boxed).expect("opens"),
            payload
        );
        prop_assert!(sealedbox::open(&wrong.secret, &wrong.public, &boxed).is_err());
    }

    /// FramedMessage encode/decode round-trips arbitrary frames.
    #[test]
    fn framed_message_roundtrip(
        seq in any::<u64>(),
        ack in any::<u64>(),
        body in proptest::collection::vec(any::<u8>(), 0..MAX_BODY_LEN),
    ) {
        let msg = FramedMessage::data(seq, ack, &body);
        let decoded = FramedMessage::decode(&msg.encode()).expect("decodes");
        prop_assert_eq!(decoded, msg);
    }

    /// Conversation keys agree on drops and decrypt each other's messages
    /// for arbitrary rounds.
    #[test]
    fn conversation_keys_agree(
        seed in any::<u64>(),
        round in any::<u64>(),
        text in proptest::collection::vec(any::<u8>(), 0..240),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let alice = Keypair::generate(&mut rng);
        let bob = Keypair::generate(&mut rng);
        let ka = ConversationKeys::derive(&alice.secret, &alice.public, &bob.public);
        let kb = ConversationKeys::derive(&bob.secret, &bob.public, &alice.public);
        prop_assert_eq!(ka.drop_id(round), kb.drop_id(round));
        let sealed = ka.seal_message(round, &text);
        let opened = kb.open_message(round, &sealed).expect("partner opens");
        prop_assert_eq!(&opened[..text.len()], &text[..]);
    }

    /// ExchangeRequest wire format round-trips.
    #[test]
    fn exchange_request_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let request = ExchangeRequest::noise(&mut rng);
        prop_assert_eq!(ExchangeRequest::decode(&request.encode()).expect("decodes"), request);
    }

    /// Entry multiplex/demultiplex is the identity for arbitrary shapes.
    #[test]
    fn entry_mux_roundtrip(
        shape in proptest::collection::vec(0usize..4, 0..12),
    ) {
        let requests: Vec<Vec<Vec<u8>>> = shape
            .iter()
            .enumerate()
            .map(|(i, &n)| (0..n).map(|j| vec![i as u8, j as u8]).collect())
            .collect();
        let (batch, layout) = vuvuzela::core::entry::multiplex(requests.clone());
        let out = vuvuzela::core::entry::demultiplex(&layout, batch);
        for (client, (orig, got)) in requests.iter().zip(out.iter()).enumerate() {
            prop_assert_eq!(orig.len(), got.len(), "client {}", client);
            for (o, g) in orig.iter().zip(got.iter()) {
                prop_assert_eq!(Some(o), g.as_ref(), "client {}", client);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The dead-drop exchange returns a response per request, preserves
    /// sizes, and pairs exactly the requests that share a drop.
    #[test]
    fn deaddrop_exchange_properties(
        // A multiset of drop assignments: request i targets drop d_i ∈ 0..6.
        assignment in proptest::collection::vec(0u8..6, 0..24),
        seed in any::<u64>(),
    ) {
        use vuvuzela::core::deaddrops::ConversationDrops;
        use vuvuzela::wire::deaddrop::DeadDropId;

        let mut rng = StdRng::seed_from_u64(seed);
        let requests: Vec<ExchangeRequest> = assignment
            .iter()
            .map(|&d| {
                let mut request = ExchangeRequest::noise(&mut rng);
                request.drop = DeadDropId([d; 16]);
                request
            })
            .collect();
        let (responses, obs) = ConversationDrops::exchange(&mut rng, &requests);
        prop_assert_eq!(responses.len(), requests.len());
        prop_assert_eq!(obs.total_requests as usize, requests.len());

        // Histogram must match a hand count.
        let mut counts = std::collections::HashMap::new();
        for &d in &assignment {
            *counts.entry(d).or_insert(0u64) += 1;
        }
        let m1 = counts.values().filter(|&&c| c == 1).count() as u64;
        let m2 = counts.values().filter(|&&c| c == 2).count() as u64;
        let many = counts.values().filter(|&&c| c > 2).count() as u64;
        prop_assert_eq!(obs.m1, m1);
        prop_assert_eq!(obs.m2, m2);
        prop_assert_eq!(obs.m_many, many);

        // Exact pairs swap contents.
        for (&drop, &count) in &counts {
            if count == 2 {
                let indices: Vec<usize> = assignment
                    .iter()
                    .enumerate()
                    .filter(|(_, &d)| d == drop)
                    .map(|(i, _)| i)
                    .collect();
                let (a, b) = (indices[0], indices[1]);
                prop_assert_eq!(&responses[a].sealed_message, &requests[b].sealed_message);
                prop_assert_eq!(&responses[b].sealed_message, &requests[a].sealed_message);
            }
        }
    }
}
