//! Replay and delay resistance: onion layers are bound to their round,
//! so requests moved across rounds authenticate nowhere.
//!
//! This is the code-level counterpart of the paper's round-based design
//! rationale: "Vuvuzela's round-based design makes it difficult for an
//! adversary to correlate dead drop accesses over time" (§3.1) and the
//! delay-attack resistance implied by per-round keys (§7: "Vuvuzela must
//! use new keys for each individual message").

use parking_lot::Mutex;
use std::sync::Arc;
use vuvuzela::adversary::taps::DelayOneRound;
use vuvuzela::core::testkit::TestNet;
use vuvuzela::core::{Chain, SystemConfig};
use vuvuzela::crypto::onion;
use vuvuzela::dp::{NoiseDistribution, NoiseMode};
use vuvuzela::wire::conversation::ExchangeRequest;

fn quiet_config() -> SystemConfig {
    SystemConfig {
        chain_len: 3,
        conversation_noise: NoiseDistribution::new(4.0, 1.0),
        dialing_noise: NoiseDistribution::new(2.0, 1.0),
        noise_mode: NoiseMode::Deterministic,
        workers: 2,
        conversation_slots: 1,
        retransmit_after: 2,
        exchange_shards: 4,
    }
}

/// A round-r onion replayed in round r+1 fails at the first server and
/// is replaced by noise — the adversary cannot re-observe an exchange.
#[test]
fn replayed_onions_are_rejected() {
    let mut chain = Chain::new(quiet_config(), 1);
    let pks = chain.server_public_keys();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    use rand::SeedableRng;

    let payload = ExchangeRequest::noise(&mut rng).encode();
    let (onion_bytes, _) = onion::wrap(&mut rng, &pks, 0, &payload);

    // Round 0: accepted.
    let (_, _) = chain.run_conversation_round(0, vec![onion_bytes.clone()]);
    assert_eq!(chain.server(0).malformed_replaced, 0);

    // Round 1: the identical bytes are cryptographically stale.
    let (_, _) = chain.run_conversation_round(1, vec![onion_bytes]);
    assert_eq!(
        chain.server(0).malformed_replaced,
        1,
        "replay must fail authentication and be replaced by noise"
    );
}

/// A delaying adversary on the client uplink turns every round into a
/// one-round-late replay — which is equivalent to dropping all traffic,
/// not to learning anything: conversations stall but the observables
/// carry only noise.
#[test]
fn delay_is_equivalent_to_drop() {
    let mut net = TestNet::builder().config(quiet_config()).seed(5).build();
    let alice = net.add_user("alice");
    let bob = net.add_user("bob");
    net.dial(alice, bob);
    net.run_dialing_round();
    net.accept_all_invitations();

    net.chain_mut()
        .client_link_mut()
        .attach_tap(Arc::new(Mutex::new(DelayOneRound::new())));

    net.queue_message(alice, bob, b"delayed into oblivion");
    for _ in 0..4 {
        net.run_conversation_round();
    }

    // Nothing is ever delivered: each delayed batch arrives one round
    // stale and fails authentication at server 0.
    assert!(net.received(bob).is_empty());
    assert!(net.chain().server(0).malformed_replaced > 0);

    // The observables during the delayed rounds contain exactly the
    // noise counts — no user exchange ever completes.
    for (round, obs) in net.chain().conversation_observables().iter().skip(1) {
        assert_eq!(
            obs.m2,
            2 * 2, // 2 noising servers × µ/2 pairs (µ=4)
            "round {round}: only noise pairs visible"
        );
    }
}

/// Dialing rounds are equally replay-bound.
#[test]
fn replayed_dial_requests_are_rejected() {
    let mut chain = Chain::new(quiet_config(), 7);
    let pks = chain.server_public_keys();
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);

    let payload = vuvuzela::wire::dialing::DialRequest::noop(&mut rng).encode();
    let (onion_bytes, _) = onion::wrap(&mut rng, &pks, 0, &payload);
    let _ = chain.run_dialing_round(0, vec![onion_bytes.clone()], 1);
    assert_eq!(chain.server(0).malformed_replaced, 0);
    let _ = chain.run_dialing_round(1, vec![onion_bytes], 1);
    assert_eq!(chain.server(0).malformed_replaced, 1);
}
