//! Property tests: the streaming round scheduler is byte-identical to
//! the sequential chain.
//!
//! [`StreamingChain`] overlaps hops across up to `chain_len` in-flight
//! rounds; nothing observable may change relative to running the same
//! rounds one at a time through [`Chain`]: per-round replies, dead-drop
//! observables, per-round link traffic, and tap-visible batches must all
//! agree for equal seeds — across chain lengths, batch sizes, noise
//! levels, and schedules of ≥3 overlapped rounds.

use parking_lot::Mutex;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use vuvuzela::core::pipeline::StreamingChain;
use vuvuzela::core::{Chain, SystemConfig};
use vuvuzela::crypto::onion;
use vuvuzela::crypto::x25519::PublicKey;
use vuvuzela::dp::{NoiseDistribution, NoiseMode};
use vuvuzela::net::link::Direction;
use vuvuzela::net::{Tap, TapContext};
use vuvuzela::wire::conversation::ExchangeRequest;

fn config(chain_len: usize, mu: f64) -> SystemConfig {
    SystemConfig {
        chain_len,
        conversation_noise: NoiseDistribution::new(mu, 1.0),
        dialing_noise: NoiseDistribution::new(2.0, 1.0),
        noise_mode: NoiseMode::Deterministic,
        workers: 2,
        conversation_slots: 1,
        retransmit_after: 2,
    }
}

fn client_rounds(
    pks: &[PublicKey],
    rounds: usize,
    clients: usize,
    seed: u64,
) -> Vec<(u64, Vec<Vec<u8>>)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC11E);
    (0..rounds as u64)
        .map(|round| {
            let batch = (0..clients)
                .map(|_| {
                    let payload = ExchangeRequest::noise(&mut rng).encode();
                    onion::wrap(&mut rng, pks, round, &payload).0
                })
                .collect();
            (round, batch)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The acceptance-criterion property: ≥3 in-flight rounds, replies
    /// and every observable byte-identical to the sequential reference.
    #[test]
    fn streaming_equals_sequential(
        chain_len in 1usize..=3,
        rounds in 3usize..=5,
        clients in 0usize..6,
        mu in 0u32..4,
        seed in any::<u64>(),
    ) {
        let mut streaming = StreamingChain::new(config(chain_len, f64::from(mu)), seed);
        let mut sequential = Chain::new(config(chain_len, f64::from(mu)), seed);
        let pks = streaming.server_public_keys();
        prop_assert_eq!(&pks, &sequential.server_public_keys());

        let schedule = client_rounds(&pks, rounds, clients, seed);
        let streamed = streaming.run_conversation_rounds(schedule.clone());
        let mut expected = Vec::new();
        for (round, batch) in schedule {
            expected.push(sequential.run_conversation_round(round, batch));
        }

        // Per-round replies, byte for byte.
        prop_assert_eq!(streamed.len(), expected.len());
        for (round, ((got, _), (want, _))) in streamed.iter().zip(&expected).enumerate() {
            prop_assert_eq!(got, want, "round {} replies diverged", round);
        }

        // Dead-drop observables (sorted by round — completion order may
        // legitimately differ from log order only in timing, not value).
        let mut got_obs = streaming.chain().conversation_observables().to_vec();
        got_obs.sort_by_key(|(r, _)| *r);
        prop_assert_eq!(&got_obs[..], sequential.conversation_observables());

        // Per-round, per-direction link traffic on every hop.
        for (sl, ql) in streaming.chain().links().iter().zip(sequential.links()) {
            for round in 0..rounds as u64 {
                for direction in [Direction::Forward, Direction::Backward] {
                    prop_assert_eq!(
                        sl.round_traffic(round, direction),
                        ql.round_traffic(round, direction),
                        "link {} round {} {:?}", sl.name(), round, direction
                    );
                }
            }
        }
        prop_assert_eq!(
            streaming.chain().total_server_bytes(),
            sequential.total_server_bytes()
        );
        prop_assert_eq!(
            streaming.chain().client_link().total_bytes(),
            sequential.client_link().total_bytes()
        );

        // No round state leaks once the schedule drains.
        for i in 0..chain_len {
            prop_assert_eq!(streaming.chain().server(i).in_flight_rounds(), 0);
        }
    }

    /// Dialing schedules: invitation drops and observables agree.
    #[test]
    fn streaming_dialing_equals_sequential(
        chain_len in 1usize..=3,
        rounds in 3usize..=4,
        clients in 0usize..4,
        seed in any::<u64>(),
    ) {
        let num_drops = 2u32;
        let mut streaming = StreamingChain::new(config(chain_len, 2.0), seed);
        let mut sequential = Chain::new(config(chain_len, 2.0), seed);
        let pks = streaming.server_public_keys();

        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1A1);
        let schedule: Vec<(u64, Vec<Vec<u8>>)> = (0..rounds as u64)
            .map(|round| {
                let batch = (0..clients)
                    .map(|_| {
                        let payload =
                            vuvuzela::wire::dialing::DialRequest::noop(&mut rng).encode();
                        onion::wrap(&mut rng, &pks, round, &payload).0
                    })
                    .collect();
                (round, batch)
            })
            .collect();

        let timings = streaming.run_dialing_rounds(schedule.clone(), num_drops);
        prop_assert_eq!(timings.len(), rounds);
        for (round, batch) in schedule {
            let _ = sequential.run_dialing_round(round, batch, num_drops);
        }

        let mut got = streaming.chain().dialing_observables().to_vec();
        got.sort_by_key(|(r, _)| *r);
        prop_assert_eq!(&got[..], sequential.dialing_observables());

        for drop in 1..=num_drops {
            let index = vuvuzela::wire::deaddrop::InvitationDropIndex(drop);
            prop_assert_eq!(
                streaming.download_drop(index),
                sequential.download_drop(index),
                "drop {} diverged", drop
            );
        }
    }
}

/// A tap that records per-(round, direction) so interleaving-sensitive
/// ordering is factored out before comparison.
#[derive(Default)]
struct RoundKeyedTap {
    seen: std::collections::BTreeMap<(u64, bool), Vec<Vec<Vec<u8>>>>,
}

impl Tap for RoundKeyedTap {
    fn intercept(&mut self, ctx: &TapContext, batch: &mut Vec<Vec<u8>>) {
        self.seen
            .entry((ctx.round, matches!(ctx.direction, Direction::Backward)))
            .or_default()
            .push(batch.clone());
    }
}

/// An adversary tapping a mid-chain link sees, per round and direction,
/// exactly the batches it would see against the sequential chain — the
/// interception semantics are unchanged by pipelining.
#[test]
fn tapped_link_sees_identical_per_round_batches() {
    let seed = 77;
    let mut streaming = StreamingChain::new(config(3, 2.0), seed);
    let mut sequential = Chain::new(config(3, 2.0), seed);
    let pks = streaming.server_public_keys();

    let stream_tap = Arc::new(Mutex::new(RoundKeyedTap::default()));
    let seq_tap = Arc::new(Mutex::new(RoundKeyedTap::default()));
    streaming
        .chain_mut()
        .link_mut(1)
        .attach_tap(stream_tap.clone());
    sequential.link_mut(1).attach_tap(seq_tap.clone());

    let schedule = client_rounds(&pks, 4, 3, seed);
    let streamed = streaming.run_conversation_rounds(schedule.clone());
    for (round, batch) in schedule {
        let (want, _) = sequential.run_conversation_round(round, batch);
        let (got, _) = &streamed[round as usize];
        assert_eq!(got, &want, "round {round}");
    }

    let got = &stream_tap.lock().seen;
    let want = &seq_tap.lock().seen;
    assert_eq!(got, want, "per-round tap observations diverged");
    assert!(!got.is_empty(), "tap saw traffic");
}
