//! Property tests: the streaming round scheduler is byte-identical to
//! the sequential chain.
//!
//! [`StreamingChain`] overlaps hops across a weighted window of
//! in-flight rounds; nothing observable may change relative to running
//! the same rounds one at a time through [`Chain`]: per-round replies,
//! dead-drop observables, dialing drops, per-round link traffic, and
//! tap-visible batches must all agree for equal seeds — across chain
//! lengths, batch sizes, noise levels, schedules of ≥3 overlapped
//! rounds, and *mixed* conversation+dialing interleavings.

use parking_lot::Mutex;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use vuvuzela::core::pipeline::StreamingChain;
use vuvuzela::core::{Chain, RoundOutcome, RoundSpec, SystemConfig};
use vuvuzela::crypto::onion;
use vuvuzela::crypto::x25519::PublicKey;
use vuvuzela::dp::{NoiseDistribution, NoiseMode};
use vuvuzela::net::link::Direction;
use vuvuzela::net::{Tap, TapContext};
use vuvuzela::wire::conversation::ExchangeRequest;

fn config(chain_len: usize, mu: f64) -> SystemConfig {
    SystemConfig {
        chain_len,
        conversation_noise: NoiseDistribution::new(mu, 1.0),
        dialing_noise: NoiseDistribution::new(2.0, 1.0),
        noise_mode: NoiseMode::Deterministic,
        workers: 2,
        conversation_slots: 1,
        retransmit_after: 2,
        exchange_shards: 4,
    }
}

fn client_rounds(
    pks: &[PublicKey],
    rounds: usize,
    clients: usize,
    seed: u64,
) -> Vec<(u64, Vec<Vec<u8>>)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC11E);
    (0..rounds as u64)
        .map(|round| {
            let batch = (0..clients)
                .map(|_| {
                    let payload = ExchangeRequest::noise(&mut rng).encode();
                    onion::wrap(&mut rng, pks, round, &payload).0
                })
                .collect();
            (round, batch)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The acceptance-criterion property: ≥3 in-flight rounds, replies
    /// and every observable byte-identical to the sequential reference.
    #[test]
    fn streaming_equals_sequential(
        chain_len in 1usize..=3,
        rounds in 3usize..=5,
        clients in 0usize..6,
        mu in 0u32..4,
        seed in any::<u64>(),
    ) {
        let mut streaming = StreamingChain::new(config(chain_len, f64::from(mu)), seed);
        let mut sequential = Chain::new(config(chain_len, f64::from(mu)), seed);
        let pks = streaming.server_public_keys();
        prop_assert_eq!(&pks, &sequential.server_public_keys());

        let schedule = client_rounds(&pks, rounds, clients, seed);
        let streamed = streaming.run_conversation_rounds(schedule.clone());
        let mut expected = Vec::new();
        for (round, batch) in schedule {
            expected.push(sequential.run_conversation_round(round, batch));
        }

        // Per-round replies, byte for byte.
        prop_assert_eq!(streamed.len(), expected.len());
        for (round, ((got, _), (want, _))) in streamed.iter().zip(&expected).enumerate() {
            prop_assert_eq!(got, want, "round {} replies diverged", round);
        }

        // Dead-drop observables (sorted by round — completion order may
        // legitimately differ from log order only in timing, not value).
        let mut got_obs = streaming.chain().conversation_observables().to_vec();
        got_obs.sort_by_key(|(r, _)| *r);
        prop_assert_eq!(&got_obs[..], sequential.conversation_observables());

        // Per-round, per-direction link traffic on every hop.
        for (sl, ql) in streaming.chain().links().iter().zip(sequential.links()) {
            for round in 0..rounds as u64 {
                for direction in [Direction::Forward, Direction::Backward] {
                    prop_assert_eq!(
                        sl.round_traffic(round, direction),
                        ql.round_traffic(round, direction),
                        "link {} round {} {:?}", sl.name(), round, direction
                    );
                }
            }
        }
        prop_assert_eq!(
            streaming.chain().total_server_bytes(),
            sequential.total_server_bytes()
        );
        prop_assert_eq!(
            streaming.chain().client_link().total_bytes(),
            sequential.client_link().total_bytes()
        );

        // No round state leaks once the schedule drains.
        for i in 0..chain_len {
            prop_assert_eq!(streaming.chain().server(i).in_flight_rounds(), 0);
        }
    }

    /// Dialing schedules: invitation drops and observables agree.
    #[test]
    fn streaming_dialing_equals_sequential(
        chain_len in 1usize..=3,
        rounds in 3usize..=4,
        clients in 0usize..4,
        seed in any::<u64>(),
    ) {
        let num_drops = 2u32;
        let mut streaming = StreamingChain::new(config(chain_len, 2.0), seed);
        let mut sequential = Chain::new(config(chain_len, 2.0), seed);
        let pks = streaming.server_public_keys();

        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1A1);
        let schedule: Vec<(u64, Vec<Vec<u8>>)> = (0..rounds as u64)
            .map(|round| {
                let batch = (0..clients)
                    .map(|_| {
                        let payload =
                            vuvuzela::wire::dialing::DialRequest::noop(&mut rng).encode();
                        onion::wrap(&mut rng, &pks, round, &payload).0
                    })
                    .collect();
                (round, batch)
            })
            .collect();

        let timings = streaming.run_dialing_rounds(schedule.clone(), num_drops);
        prop_assert_eq!(timings.len(), rounds);
        for (round, batch) in schedule {
            let _ = sequential.run_dialing_round(round, batch, num_drops);
        }

        let mut got = streaming.chain().dialing_observables().to_vec();
        got.sort_by_key(|(r, _)| *r);
        prop_assert_eq!(&got[..], sequential.dialing_observables());

        for drop in 1..=num_drops {
            let index = vuvuzela::wire::deaddrop::InvitationDropIndex(drop);
            prop_assert_eq!(
                streaming.download_drop(index),
                sequential.download_drop(index),
                "drop {} diverged", drop
            );
        }
    }
}

/// Builds an interleaved conversation+dialing schedule from a pattern of
/// per-round dialing flags.
fn mixed_specs(
    pks: &[PublicKey],
    pattern: &[bool],
    clients: usize,
    num_drops: u32,
    seed: u64,
) -> Vec<RoundSpec> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x313D);
    pattern
        .iter()
        .enumerate()
        .map(|(round, &dialing)| {
            let round = round as u64;
            if dialing {
                let batch: Vec<Vec<u8>> = (0..clients)
                    .map(|_| {
                        let payload = vuvuzela::wire::dialing::DialRequest::noop(&mut rng).encode();
                        onion::wrap(&mut rng, pks, round, &payload).0
                    })
                    .collect();
                RoundSpec::Dialing {
                    round,
                    batch: batch.into(),
                    num_drops,
                }
            } else {
                let batch: Vec<Vec<u8>> = (0..clients)
                    .map(|_| {
                        let payload = ExchangeRequest::noise(&mut rng).encode();
                        onion::wrap(&mut rng, pks, round, &payload).0
                    })
                    .collect();
                RoundSpec::Conversation {
                    round,
                    batch: batch.into(),
                }
            }
        })
        .collect()
}

/// Asserts every observable of a mixed schedule agrees between the
/// streaming and sequential chains: per-round replies, conversation and
/// dialing observables, the retained invitation drops, and each link's
/// *entire* per-round traffic log.
fn assert_mixed_equivalent(
    streaming: &mut StreamingChain,
    sequential: &mut Chain,
    outcomes: &[RoundOutcome],
    expected: &[RoundOutcome],
    num_drops: u32,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(outcomes.len(), expected.len());
    for (round, (got, want)) in outcomes.iter().zip(expected).enumerate() {
        prop_assert_eq!(
            got.replies(),
            want.replies(),
            "round {} replies diverged",
            round
        );
    }

    let mut got_obs = streaming.chain().conversation_observables().to_vec();
    got_obs.sort_by_key(|(r, _)| *r);
    prop_assert_eq!(&got_obs[..], sequential.conversation_observables());
    let mut got_dial = streaming.chain().dialing_observables().to_vec();
    got_dial.sort_by_key(|(r, _)| *r);
    prop_assert_eq!(&got_dial[..], sequential.dialing_observables());

    // The retained drops come from the *last* dialing round in feed
    // order, matching the sequential chain's overwrite semantics.
    prop_assert_eq!(
        streaming.chain().current_num_drops(),
        sequential.current_num_drops()
    );
    for drop in 1..=num_drops {
        let index = vuvuzela::wire::deaddrop::InvitationDropIndex(drop);
        prop_assert_eq!(
            streaming.download_drop(index),
            sequential.download_drop(index),
            "drop {} diverged",
            drop
        );
    }

    // Entire per-round traffic logs per link (catches both diverging
    // counts and spuriously attributed rounds).
    for (sl, ql) in streaming.chain().links().iter().zip(sequential.links()) {
        prop_assert_eq!(
            sl.round_traffic_log(),
            ql.round_traffic_log(),
            "link {} per-round log diverged",
            sl.name()
        );
    }
    prop_assert_eq!(
        streaming.chain().client_link().round_traffic_log(),
        sequential.client_link().round_traffic_log()
    );
    prop_assert_eq!(
        streaming.chain().total_server_bytes(),
        sequential.total_server_bytes()
    );

    // No round state leaks once the schedule drains.
    for i in 0..streaming.config().chain_len {
        prop_assert_eq!(streaming.chain().server(i).in_flight_rounds(), 0);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The mixed-schedule acceptance property: an arbitrary interleaving
    /// of conversation and dialing rounds, overlapped ≥3 deep, is
    /// byte-identical to the sequential chain run over the same
    /// [`RoundSpec`] sequence.
    #[test]
    fn streaming_mixed_equals_sequential(
        chain_len in 1usize..=3,
        pattern in collection::vec(any::<bool>(), 4..=7),
        clients in 0usize..4,
        seed in any::<u64>(),
    ) {
        let num_drops = 2u32;
        let window = 3usize.max(chain_len);
        let mut streaming =
            StreamingChain::new(config(chain_len, 2.0), seed).with_max_in_flight(window);
        let mut sequential = Chain::new(config(chain_len, 2.0), seed);
        let pks = streaming.server_public_keys();

        let specs = mixed_specs(&pks, &pattern, clients, num_drops, seed);
        let outcomes = streaming.run_mixed_schedule(specs.clone());
        let expected: Vec<RoundOutcome> = specs
            .into_iter()
            .map(|spec| sequential.run_round(spec))
            .collect();
        assert_mixed_equivalent(&mut streaming, &mut sequential, &outcomes, &expected, num_drops)?;
    }
}

/// Deterministic mixed schedule with dialing rounds both adjacent and
/// separated, real invitations included, ≥3 rounds in flight: replies,
/// `dialing_log`, and `download_drop` all match the sequential
/// reference.
#[test]
fn mixed_schedule_adjacent_and_separated_dialing() {
    let seed = 2026;
    let num_drops = 2u32;
    let mut streaming = StreamingChain::new(config(3, 3.0), seed).with_max_in_flight(3);
    let mut sequential = Chain::new(config(3, 3.0), seed);
    let pks = streaming.server_public_keys();
    let mut rng = StdRng::seed_from_u64(99);

    let caller = vuvuzela::crypto::x25519::Keypair::generate(&mut rng);
    let callee = vuvuzela::crypto::x25519::Keypair::generate(&mut rng);
    let target =
        vuvuzela::wire::deaddrop::InvitationDropIndex::for_recipient(&callee.public, num_drops);

    // Pattern: C D D C C D C — dialing adjacent (1, 2) and separated
    // (5); the last dialing round carries a real invitation so the
    // retained drops are non-trivially compared.
    let pattern = [false, true, true, false, false, true, false];
    let mut specs = mixed_specs(&pks, &pattern, 2, num_drops, seed);
    let RoundSpec::Dialing { batch, .. } = &mut specs[5] else {
        panic!("round 5 is a dialing round");
    };
    let request = vuvuzela::wire::dialing::DialRequest {
        drop: target,
        invitation: vuvuzela::wire::dialing::SealedInvitation::seal(
            &mut rng,
            &caller.public,
            &callee.public,
        ),
    };
    let vuvuzela::core::chain::Batch::Vecs(batch) = batch else {
        panic!("mixed_specs builds Vecs batches");
    };
    batch.push(onion::wrap(&mut rng, &pks, 5, &request.encode()).0);

    let outcomes = streaming.run_mixed_schedule(specs.clone());
    let expected: Vec<RoundOutcome> = specs
        .into_iter()
        .map(|spec| sequential.run_round(spec))
        .collect();
    assert_mixed_equivalent(
        &mut streaming,
        &mut sequential,
        &outcomes,
        &expected,
        num_drops,
    )
    .expect("mixed schedule equivalent");

    // The real invitation is downloadable through the streaming chain
    // and opens to the caller's key.
    let contents = streaming.download_drop(target).expect("drops exist");
    let mine: Vec<_> = contents
        .iter()
        .filter_map(|inv| inv.try_open(&callee.secret, &callee.public))
        .collect();
    assert_eq!(mine, vec![caller.public]);
}

/// A panicking stage mid-mixed-schedule must abort the schedule (with a
/// panic) instead of deadlocking feeder or stages.
#[test]
fn panicking_stage_mid_mixed_schedule_aborts() {
    struct ExplodingTap {
        intercepts: u32,
    }
    impl Tap for ExplodingTap {
        fn intercept(&mut self, _ctx: &TapContext, _batch: &mut Vec<Vec<u8>>) {
            self.intercepts += 1;
            if self.intercepts >= 3 {
                panic!("tap exploded mid-schedule");
            }
        }
    }

    let seed = 404;
    let mut streaming = StreamingChain::new(config(3, 2.0), seed).with_max_in_flight(3);
    let pks = streaming.server_public_keys();
    streaming
        .chain_mut()
        .link_mut(1)
        .attach_tap(Arc::new(Mutex::new(ExplodingTap { intercepts: 0 })));

    let pattern = [false, true, false, true, true, false];
    let specs = mixed_specs(&pks, &pattern, 2, 2, seed);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        streaming.run_mixed_schedule(specs)
    }));
    assert!(outcome.is_err(), "mixed schedule must fail, not hang");
}

/// A tap that records per-(round, direction) so interleaving-sensitive
/// ordering is factored out before comparison.
#[derive(Default)]
struct RoundKeyedTap {
    seen: std::collections::BTreeMap<(u64, bool), Vec<Vec<Vec<u8>>>>,
}

impl Tap for RoundKeyedTap {
    fn intercept(&mut self, ctx: &TapContext, batch: &mut Vec<Vec<u8>>) {
        self.seen
            .entry((ctx.round, matches!(ctx.direction, Direction::Backward)))
            .or_default()
            .push(batch.clone());
    }
}

/// An adversary tapping a mid-chain link sees, per round and direction,
/// exactly the batches it would see against the sequential chain — the
/// interception semantics are unchanged by pipelining.
#[test]
fn tapped_link_sees_identical_per_round_batches() {
    let seed = 77;
    let mut streaming = StreamingChain::new(config(3, 2.0), seed);
    let mut sequential = Chain::new(config(3, 2.0), seed);
    let pks = streaming.server_public_keys();

    let stream_tap = Arc::new(Mutex::new(RoundKeyedTap::default()));
    let seq_tap = Arc::new(Mutex::new(RoundKeyedTap::default()));
    streaming
        .chain_mut()
        .link_mut(1)
        .attach_tap(stream_tap.clone());
    sequential.link_mut(1).attach_tap(seq_tap.clone());

    let schedule = client_rounds(&pks, 4, 3, seed);
    let streamed = streaming.run_conversation_rounds(schedule.clone());
    for (round, batch) in schedule {
        let (want, _) = sequential.run_conversation_round(round, batch);
        let (got, _) = &streamed[round as usize];
        assert_eq!(got, &want, "round {round}");
    }

    let got = &stream_tap.lock().seen;
    let want = &seq_tap.lock().seen;
    assert_eq!(got, want, "per-round tap observations diverged");
    assert!(!got.is_empty(), "tap saw traffic");
}
