//! Property tests for the `transmit_buf` tap-resize path.
//!
//! Adversary taps receive in-flight batches by mutable reference and may
//! truncate entries, extend them, or inject new ones ("monitor, block,
//! delay, or inject", §2.3). The flat round pipeline rebuilds the batch
//! into its fixed-stride arena afterwards: entries whose size no longer
//! matches the hop's onion width **cannot** be valid onions, so their
//! slots are rebuilt zero-filled (an all-zero ephemeral key is low-order
//! and fails the peel), and the count of such entries is surfaced on
//! [`Chain::tap_resized`]. These tests pin down that contract: alignment
//! survives arbitrary resizing, every resized entry is counted, every
//! zero-filled slot is replaced by substitute noise downstream, and the
//! round still completes with one uniform reply per client.

use parking_lot::Mutex;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use vuvuzela::core::{Chain, RoundBuffer, SystemConfig};
use vuvuzela::crypto::onion;
use vuvuzela::dp::{NoiseDistribution, NoiseMode};
use vuvuzela::net::link::Direction;
use vuvuzela::net::{Tap, TapContext};
use vuvuzela::wire::conversation::ExchangeRequest;
use vuvuzela::wire::EXCHANGE_REQUEST_LEN;

fn config(chain_len: usize, mu: f64) -> SystemConfig {
    SystemConfig {
        chain_len,
        conversation_noise: NoiseDistribution::new(mu, 1.0),
        dialing_noise: NoiseDistribution::new(1.0, 1.0),
        noise_mode: NoiseMode::Deterministic,
        workers: 2,
        conversation_slots: 1,
        retransmit_after: 2,
        exchange_shards: 4,
    }
}

/// One size-tampering action against a batch in flight.
#[derive(Clone, Debug)]
enum ResizeOp {
    /// Truncate entry `index % len` to `new_len % old_len` bytes.
    Truncate { index: u16, new_len: u16 },
    /// Append `extra` bytes to entry `index % len`.
    Extend { index: u16, extra: u8 },
    /// Push a fresh entry of `size` bytes.
    Inject { size: u16 },
}

fn resize_op() -> impl Strategy<Value = ResizeOp> {
    any::<(u8, u16, u16)>().prop_map(|(kind, a, b)| match kind % 3 {
        0 => ResizeOp::Truncate {
            index: a,
            new_len: b,
        },
        1 => ResizeOp::Extend {
            index: a,
            extra: (b % 63 + 1) as u8,
        },
        _ => ResizeOp::Inject { size: b % 2048 },
    })
}

fn apply_ops(ops: &[ResizeOp], batch: &mut Vec<Vec<u8>>) {
    for op in ops {
        match *op {
            ResizeOp::Truncate { index, new_len } => {
                if !batch.is_empty() {
                    let i = index as usize % batch.len();
                    let len = batch[i].len();
                    if len > 0 {
                        batch[i].truncate(new_len as usize % len);
                    }
                }
            }
            ResizeOp::Extend { index, extra } => {
                if !batch.is_empty() {
                    let i = index as usize % batch.len();
                    batch[i].extend(std::iter::repeat_n(0xEE, extra as usize));
                }
            }
            ResizeOp::Inject { size } => {
                batch.push(vec![0xEE; size as usize]);
            }
        }
    }
}

/// Applies a fixed op list to the first batch it sees in the configured
/// direction (one round per test run), remembering the resulting sizes.
struct ResizeTap {
    ops: Vec<ResizeOp>,
    direction: Direction,
    sizes_after: Option<Vec<usize>>,
}

impl Tap for ResizeTap {
    fn intercept(&mut self, ctx: &TapContext, batch: &mut Vec<Vec<u8>>) {
        if ctx.direction == self.direction && self.sizes_after.is_none() {
            apply_ops(&self.ops, batch);
            self.sizes_after = Some(batch.iter().map(Vec::len).collect());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Forward-path resizing: the rebuilt arena zero-fills every
    /// mismatched entry, `tap_resized` counts exactly those, downstream
    /// peeling replaces them with noise, and reply alignment holds.
    #[test]
    fn forward_resize_yields_counted_zero_filled_slots(
        clients in 1usize..5,
        ops in proptest::collection::vec(resize_op(), 0..6),
        seed in any::<u64>(),
    ) {
        let chain_len = 2;
        let mut chain = Chain::new(config(chain_len, 2.0), seed);
        let pks = chain.server_public_keys();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7A9);

        let batch: Vec<Vec<u8>> = (0..clients)
            .map(|_| {
                let payload = ExchangeRequest::noise(&mut rng).encode();
                onion::wrap(&mut rng, &pks, 0, &payload).0
            })
            .collect();

        // The width expected on links[1] (server0 → server1): one layer
        // already peeled.
        let width = onion::wrapped_len(EXCHANGE_REQUEST_LEN, chain_len - 1);

        let tap = Arc::new(Mutex::new(ResizeTap {
            ops: ops.clone(),
            direction: Direction::Forward,
            sizes_after: None,
        }));
        chain.link_mut(1).attach_tap(tap.clone());

        let (replies, _) = chain.run_conversation_round(0, batch);

        // Alignment: one uniform-size reply per client, no matter what
        // the tap did mid-chain.
        prop_assert_eq!(replies.len(), clients);
        let sizes: std::collections::HashSet<usize> = replies.iter().map(Vec::len).collect();
        prop_assert!(sizes.len() <= 1, "non-uniform replies: {:?}", sizes);

        // The surfaced count equals the number of entries whose post-tap
        // size cannot be a valid onion at this hop.
        let sizes_after = tap.lock().sizes_after.clone().expect("tap ran");
        let expected_resized = sizes_after.iter().filter(|&&len| len != width).count() as u64;
        prop_assert_eq!(chain.tap_resized(), expected_resized, "sizes {:?}", sizes_after);

        // Every zero-filled slot fails authentication downstream and is
        // replaced by substitute noise (well-sized injections fail too,
        // so the replacement count is at least the resized count).
        prop_assert!(chain.server(1).malformed_replaced >= expected_resized);
    }

    /// Backward-path resizing: reply batches whose shape changed make
    /// the upstream server emit uniform filler for every client rather
    /// than misrouting plaintext; resized entries are still counted.
    #[test]
    fn backward_resize_keeps_alignment(
        clients in 1usize..5,
        ops in proptest::collection::vec(resize_op(), 1..5),
        seed in any::<u64>(),
    ) {
        let chain_len = 2;
        let mut chain = Chain::new(config(chain_len, 2.0), seed);
        let pks = chain.server_public_keys();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB4C);

        let batch: Vec<Vec<u8>> = (0..clients)
            .map(|_| {
                let payload = ExchangeRequest::noise(&mut rng).encode();
                onion::wrap(&mut rng, &pks, 1, &payload).0
            })
            .collect();

        let tap = Arc::new(Mutex::new(ResizeTap {
            ops,
            direction: Direction::Backward,
            sizes_after: None,
        }));
        chain.link_mut(1).attach_tap(tap.clone());

        let (replies, _) = chain.run_conversation_round(1, batch);
        prop_assert_eq!(replies.len(), clients);
        let sizes: std::collections::HashSet<usize> = replies.iter().map(Vec::len).collect();
        prop_assert!(sizes.len() <= 1, "non-uniform replies: {:?}", sizes);

        // Whatever the tap resized was counted (entries it left at the
        // correct reply width are not).
        let sizes_after = tap.lock().sizes_after.clone().expect("tap ran");
        let reply_width = vuvuzela::wire::EXCHANGE_RESPONSE_LEN + onion::REPLY_LAYER_OVERHEAD;
        let expected_resized =
            sizes_after.iter().filter(|&&len| len != reply_width).count() as u64;
        prop_assert_eq!(chain.tap_resized(), expected_resized);
    }
}

/// The rebuild invariant at the unit level: a resized entry's slot comes
/// back zero-filled (which downstream peeling rejects as a low-order
/// ephemeral), while well-sized neighbours are preserved bit for bit.
#[test]
fn rebuilt_slots_are_zero_filled() {
    let good = vec![0xAB; 100];
    let truncated = vec![0xCD; 40];
    let extended = vec![0xEF; 130];
    let (buf, mismatched) = RoundBuffer::from_vecs(&[good.clone(), truncated, extended], 120, 100);
    assert_eq!(mismatched, vec![1, 2]);
    assert_eq!(buf.slot(0), &good[..]);
    assert_eq!(buf.slot(1), vec![0u8; 100].as_slice());
    assert_eq!(buf.slot(2), vec![0u8; 100].as_slice());
}
