//! Transport-equivalence pins: the same scripted deployment schedule
//! must produce **byte-identical transcripts** across all three
//! execution modes —
//!
//! 1. the in-process sequential [`vuvuzela::core::Chain`]
//!    (`deploy::run_reference`),
//! 2. transport-driven nodes over in-memory endpoints
//!    ([`vuvuzela::net::memory_pair`]),
//! 3. transport-driven nodes over loopback TCP (ephemeral ports, one
//!    thread per node standing in for the per-process bins) — at
//!    window depth 1 (sequential) and pipelined depths up to
//!    `chain_len`.
//!
//! The separate-OS-process variant of (3) is exercised by
//! `vuvuzela-launch --check` in CI's deploy-smoke job.

use proptest::prelude::*;
use std::sync::Arc;
use vuvuzela::core::chain::build_server;
use vuvuzela::core::node::{run_entry_node, run_server_node};
use vuvuzela::core::server::RoundKind;
use vuvuzela::crypto::onion;
use vuvuzela::deploy::{self, DeploymentConfig, ScheduleEntry};
use vuvuzela::net::link::Link;
use vuvuzela::net::transport::memory_pair;
use vuvuzela::net::{Error, LinkId, Transport};
use vuvuzela::wire::{BatchFrame, Frame, RoundId, RoundType};

fn smoke() -> DeploymentConfig {
    deploy::smoke_config()
}

/// The smoke deployment with two extra rounds so pipelined windows see
/// a conversation/dialing interleaving deeper than the window itself.
fn mixed() -> DeploymentConfig {
    let mut cfg = smoke();
    cfg.schedule
        .push(ScheduleEntry::Dialing { dials: 1, drops: 3 });
    cfg.schedule.push(ScheduleEntry::Conversation {
        pairs: 1,
        singles: 1,
    });
    cfg
}

/// Mode 2: nodes over in-memory endpoints, client driven by the same
/// `deploy::run_client` the TCP bin uses.
fn run_memory(cfg: &DeploymentConfig, depth: usize) -> String {
    let chain_len = cfg.system.chain_len;
    let (client_end, entry_client_end) = memory_pair(Arc::new(Link::new(LinkId::Clients)));
    // For hop i, `send_ends[i]` goes to the upstream node (entry or
    // server i-1) and `recv_ends[i]` to server i.
    let mut send_ends: Vec<Arc<dyn Transport>> = Vec::new();
    let mut recv_ends: Vec<Arc<dyn Transport>> = Vec::new();
    for i in 0..chain_len {
        let (a, b) = memory_pair(Arc::new(Link::new(LinkId::Hop(i as u32))));
        send_ends.push(Arc::new(a));
        recv_ends.push(Arc::new(b));
    }

    let mut handles = Vec::new();
    let entry_down = send_ends.remove(0);
    let entry_clients: Arc<dyn Transport> = Arc::new(entry_client_end);
    let cfg_entry = cfg.system.clone();
    handles.push(std::thread::spawn(move || {
        run_entry_node(&cfg_entry, entry_clients, entry_down).expect("entry node");
    }));
    for position in 0..chain_len {
        let up = recv_ends.remove(0);
        // After removing the entry's end, `send_ends[0]` is hop
        // `position + 1`'s sending side.
        let down = if position + 1 < chain_len {
            Some(send_ends.remove(0))
        } else {
            None
        };
        let server = build_server(&cfg.system, cfg.seed, position);
        let system = cfg.system.clone();
        let seed = cfg.seed;
        handles.push(std::thread::spawn(move || {
            run_server_node(server, &system, seed, up, down).expect("server node");
        }));
    }

    let transcript = deploy::run_client(cfg, &client_end, depth).expect("memory client");
    for handle in handles {
        handle.join().expect("node thread");
    }
    transcript
}

/// Mode 3: nodes over loopback TCP with ephemeral ports, one thread per
/// node running exactly the code the bins run.
fn run_loopback_tcp(cfg: &DeploymentConfig, depth: usize) -> String {
    let cfg = cfg.clone();
    let mut handles = Vec::new();
    for position in (0..cfg.system.chain_len).rev() {
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            deploy::serve_server(&cfg, position).expect("server");
        }));
    }
    {
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            deploy::serve_entry(&cfg).expect("entry");
        }));
    }
    let transcript = deploy::run_client_tcp(&cfg, depth).expect("tcp client");
    for handle in handles {
        handle.join().expect("node thread");
    }
    transcript
}

#[test]
fn all_three_transports_produce_identical_transcripts() {
    // Resolve `:0` ports once so all three modes share one concrete
    // config (the digest in the transcript header covers addresses).
    let mut cfg = smoke();
    deploy::resolve_ephemeral_ports(&mut cfg).expect("free loopback ports");
    let reference = deploy::run_reference(&cfg);
    assert!(
        reference.contains("round 0 conversation"),
        "reference transcript covers the schedule:\n{reference}"
    );

    let memory = run_memory(&cfg, 1);
    assert_eq!(
        memory, reference,
        "in-memory transport diverged from the sequential chain"
    );

    let tcp = run_loopback_tcp(&cfg, 1);
    assert_eq!(
        tcp, reference,
        "loopback TCP transport diverged from the sequential chain"
    );
}

#[test]
fn pipelined_tcp_matches_sequential_reference_at_every_depth() {
    // One fresh port resolution per depth: back-to-back runs must not
    // rebind the previous run's listeners (TIME_WAIT), so each run
    // gets its own concrete config and its own reference transcript.
    let chain_len = mixed().system.chain_len;
    for depth in [1, 2, chain_len] {
        let mut cfg = mixed();
        deploy::resolve_ephemeral_ports(&mut cfg).expect("free loopback ports");
        let reference = deploy::run_reference(&cfg);
        let tcp = run_loopback_tcp(&cfg, depth);
        assert_eq!(
            tcp, reference,
            "pipelined TCP at depth {depth} diverged from the sequential reference"
        );
    }
}

#[test]
fn pipelined_memory_matches_sequential_reference() {
    let mut cfg = mixed();
    deploy::resolve_ephemeral_ports(&mut cfg).expect("free loopback ports");
    let reference = deploy::run_reference(&cfg);
    let memory = run_memory(&cfg, cfg.system.chain_len);
    assert_eq!(
        memory, reference,
        "pipelined in-memory transport diverged from the sequential reference"
    );
}

#[test]
fn transcripts_react_to_seed_and_schedule() {
    let cfg = smoke();
    let mut other = smoke();
    other.seed ^= 1;
    assert_ne!(
        deploy::run_reference(&cfg),
        deploy::run_reference(&other),
        "different seeds must not collide"
    );

    let mut shorter = smoke();
    shorter.schedule.pop();
    assert_ne!(deploy::run_reference(&cfg), deploy::run_reference(&shorter));
}

#[test]
fn paired_exchanges_verify_in_every_round() {
    let cfg = smoke();
    let reference = deploy::run_reference(&cfg);
    // smoke_config rounds: 2 pairs -> 4 verified, then 1 pair -> 2, then
    // 0 pairs -> 0. Pin the counts so verification is known-effective.
    assert!(reference.contains("verified 4"), "{reference}");
    assert!(reference.contains("verified 2"), "{reference}");
    assert!(reference.contains("verified 0"), "{reference}");
}

/// Drives a bare entry node (dummy never-replying downstream) with
/// `window + extra` zero-count rounds and returns the entry's error.
fn overfill_entry(chain_len: usize, extra: usize) -> Error {
    let mut system = smoke().system;
    system.chain_len = chain_len;
    let (client_end, entry_clients) = memory_pair(Arc::new(Link::new(LinkId::Clients)));
    let (entry_down, dummy) = memory_pair(Arc::new(Link::new(LinkId::Hop(0))));
    // The dummy tail drains exactly the admitted rounds but never
    // answers, so the entry's window can only fill, never drain:
    // admission behaviour is a pure function of the client's sends.
    let window = chain_len.max(1);
    let drain = std::thread::spawn(move || {
        for _ in 0..window {
            dummy.recv().expect("forwarded round");
        }
    });
    let entry_clients: Arc<dyn Transport> = Arc::new(entry_clients);
    let entry_down: Arc<dyn Transport> = Arc::new(entry_down);
    let entry = {
        let system = system.clone();
        std::thread::spawn(move || run_entry_node(&system, entry_clients, entry_down))
    };

    let width = onion::wrapped_len(RoundKind::Conversation.payload_len(), chain_len) as u32;
    for round in 0..(window + extra) as u64 {
        let sent = client_end.send(Frame::Batch(BatchFrame {
            link: LinkId::Clients,
            round: RoundId(round),
            round_type: RoundType::Conversation,
            num_drops: 0,
            backward: false,
            stride: width,
            width,
            count: 0,
            payload: Vec::new(),
            trailer: Vec::new(),
        }));
        if sent.is_err() {
            // The entry already errored out and hung up; that error is
            // what the test asserts on.
            break;
        }
    }
    let err = entry
        .join()
        .expect("entry thread")
        .expect_err("overfilled entry must reject");
    drop(client_end);
    drain.join().expect("drain thread");
    err
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Out-of-window admission is rejected *deterministically*: the
    /// entry errors with the same protocol violation — naming the
    /// window size — for any chain length and any overshoot, and two
    /// identical runs produce byte-identical error messages.
    #[test]
    fn out_of_window_admission_is_rejected_deterministically(
        chain_len in 1usize..=4,
        extra in 1usize..=3,
    ) {
        let err = overfill_entry(chain_len, extra);
        let reason = match &err {
            Error::Protocol { link, reason } => {
                prop_assert_eq!(*link, LinkId::Clients);
                reason.clone()
            }
            other => panic!("expected a protocol rejection, got {other:?}"),
        };
        prop_assert!(
            reason.contains("admission window"),
            "rejection names the window: {reason}"
        );
        prop_assert!(
            reason.contains(&format!("round {}", chain_len.max(1))),
            "the first out-of-window round is rejected: {reason}"
        );
        // Same inputs, same rejection, byte for byte.
        let again = overfill_entry(chain_len, extra);
        prop_assert_eq!(format!("{err}"), format!("{again}"));
    }
}
