//! Transport-equivalence pins: the same scripted deployment schedule
//! must produce **byte-identical transcripts** across all three
//! execution modes —
//!
//! 1. the in-process sequential [`vuvuzela::core::Chain`]
//!    (`deploy::run_reference`),
//! 2. transport-driven nodes over in-memory endpoints
//!    ([`vuvuzela::net::memory_pair`]),
//! 3. transport-driven nodes over loopback TCP (ephemeral ports, one
//!    thread per node standing in for the per-process bins).
//!
//! The separate-OS-process variant of (3) is exercised by
//! `vuvuzela-launch --check` in CI's deploy-smoke job.

use std::sync::Arc;
use vuvuzela::core::chain::build_server;
use vuvuzela::core::node::{run_entry_node, run_server_node};
use vuvuzela::deploy::{self, DeploymentConfig};
use vuvuzela::net::link::Link;
use vuvuzela::net::transport::memory_pair;
use vuvuzela::net::{LinkId, Transport};

fn smoke() -> DeploymentConfig {
    deploy::smoke_config()
}

/// Mode 2: nodes over in-memory endpoints, client driven by the same
/// `deploy::run_client` the TCP bin uses.
fn run_memory(cfg: &DeploymentConfig) -> String {
    let chain_len = cfg.system.chain_len;
    let (client_end, entry_client_end) = memory_pair(Arc::new(Link::new(LinkId::Clients)));
    // For hop i, `send_ends[i]` goes to the upstream node (entry or
    // server i-1) and `recv_ends[i]` to server i.
    let mut send_ends = Vec::new();
    let mut recv_ends = Vec::new();
    for i in 0..chain_len {
        let (a, b) = memory_pair(Arc::new(Link::new(LinkId::Hop(i as u32))));
        send_ends.push(a);
        recv_ends.push(b);
    }

    let mut handles = Vec::new();
    let entry_down = send_ends.remove(0);
    let cfg_entry = cfg.system.clone();
    handles.push(std::thread::spawn(move || {
        run_entry_node(&cfg_entry, &entry_client_end, &entry_down).expect("entry node");
    }));
    for position in 0..chain_len {
        let up = recv_ends.remove(0);
        // After removing the entry's end, `send_ends[0]` is hop
        // `position + 1`'s sending side.
        let down = if position + 1 < chain_len {
            Some(send_ends.remove(0))
        } else {
            None
        };
        let server = build_server(&cfg.system, cfg.seed, position);
        let system = cfg.system.clone();
        let seed = cfg.seed;
        handles.push(std::thread::spawn(move || {
            run_server_node(
                server,
                &system,
                seed,
                &up,
                down.as_ref().map(|d| d as &dyn Transport),
            )
            .expect("server node");
        }));
    }

    let transcript = deploy::run_client(cfg, &client_end).expect("memory client");
    for handle in handles {
        handle.join().expect("node thread");
    }
    transcript
}

/// Mode 3: nodes over loopback TCP with ephemeral ports, one thread per
/// node running exactly the code the bins run.
fn run_loopback_tcp(cfg: &DeploymentConfig) -> String {
    let cfg = cfg.clone();
    let mut handles = Vec::new();
    for position in (0..cfg.system.chain_len).rev() {
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            deploy::serve_server(&cfg, position).expect("server");
        }));
    }
    {
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            deploy::serve_entry(&cfg).expect("entry");
        }));
    }
    let transcript = deploy::run_client_tcp(&cfg).expect("tcp client");
    for handle in handles {
        handle.join().expect("node thread");
    }
    transcript
}

#[test]
fn all_three_transports_produce_identical_transcripts() {
    // Resolve `:0` ports once so all three modes share one concrete
    // config (the digest in the transcript header covers addresses).
    let mut cfg = smoke();
    deploy::resolve_ephemeral_ports(&mut cfg).expect("free loopback ports");
    let reference = deploy::run_reference(&cfg);
    assert!(
        reference.contains("round 0 conversation"),
        "reference transcript covers the schedule:\n{reference}"
    );

    let memory = run_memory(&cfg);
    assert_eq!(
        memory, reference,
        "in-memory transport diverged from the sequential chain"
    );

    let tcp = run_loopback_tcp(&cfg);
    assert_eq!(
        tcp, reference,
        "loopback TCP transport diverged from the sequential chain"
    );
}

#[test]
fn transcripts_react_to_seed_and_schedule() {
    let cfg = smoke();
    let mut other = smoke();
    other.seed ^= 1;
    assert_ne!(
        deploy::run_reference(&cfg),
        deploy::run_reference(&other),
        "different seeds must not collide"
    );

    let mut shorter = smoke();
    shorter.schedule.pop();
    assert_ne!(deploy::run_reference(&cfg), deploy::run_reference(&shorter));
}

#[test]
fn paired_exchanges_verify_in_every_round() {
    let cfg = smoke();
    let reference = deploy::run_reference(&cfg);
    // smoke_config rounds: 2 pairs -> 4 verified, then 1 pair -> 2, then
    // 0 pairs -> 0. Pin the counts so verification is known-effective.
    assert!(reference.contains("verified 4"), "{reference}");
    assert!(reference.contains("verified 2"), "{reference}");
    assert!(reference.contains("verified 0"), "{reference}");
}
