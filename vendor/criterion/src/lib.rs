//! Vendored, API-compatible subset of `criterion`.
//!
//! A wall-clock micro-benchmark harness exposing the criterion API this
//! workspace uses: `criterion_group!` / `criterion_main!`,
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! `Bencher::iter` / `iter_batched`, and [`Throughput`] reporting.
//!
//! Compared to the real criterion there is no statistical regression
//! analysis, no HTML report and no saved baselines: each benchmark is
//! warmed up briefly, timed over `sample_size` samples, and summarized as
//! median / mean / min ns-per-iteration (plus throughput when declared)
//! on stdout. That is sufficient for the repo's BENCH artefacts, which
//! recompute their own aggregates.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. All variants behave the same
/// here: setup runs untimed before every routine invocation.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small input: many inputs per batch upstream.
    SmallInput,
    /// Large input: few inputs per batch upstream.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Units processed per iteration, for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Top-level harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(150),
            measurement_time: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the target warm-up time per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Runs one benchmark. The closure receives a [`Bencher`] and must
    /// call `iter` or `iter_batched` exactly once.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            warm_up_time: self.criterion.warm_up_time,
            measurement_time: self.criterion.measurement_time,
        };
        f(&mut bencher);
        report(&full, &mut bencher.samples, self.throughput);
        self
    }

    /// Ends the group (printing happens eagerly; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and calibrate iterations-per-sample from it.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up_time.as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = ((budget / per_iter).ceil() as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples.push(elapsed * 1e9 / iters as f64);
        }
    }

    /// Times `routine` with untimed per-invocation `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One warm-up invocation so lazy statics and caches are hot.
        black_box(routine(setup()));

        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_secs_f64() * 1e9);
        }
    }
}

fn report(name: &str, samples: &mut [f64], throughput: Option<Throughput>) {
    assert!(!samples.is_empty(), "benchmark {name} produced no samples");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples[0];
    let tp = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 * 1e9 / median)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  {:>12.1} MiB/s",
                n as f64 * 1e9 / median / (1024.0 * 1024.0)
            )
        }
        None => String::new(),
    };
    println!(
        "{name:<44} median {:>12} mean {:>12} min {:>12}{tp}",
        fmt_ns(median),
        fmt_ns(mean),
        fmt_ns(min),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(6))
    }

    #[test]
    fn iter_produces_samples_and_prints() {
        let mut c = fast_criterion();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(1));
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        group.finish();
    }

    #[test]
    fn iter_batched_runs_setup_each_sample() {
        let mut c = fast_criterion();
        let mut group = c.benchmark_group("shim");
        let mut setups = 0u32;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![0u8; 16]
                },
                |v| v.len(),
                BatchSize::PerIteration,
            )
        });
        group.finish();
        assert!(setups >= 4, "setup ran for warmup + each sample");
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(12_000.0), "12.00 us");
        assert_eq!(fmt_ns(12_000_000.0), "12.00 ms");
        assert_eq!(fmt_ns(1.2e10), "12.000 s");
    }

    criterion_group!(simple_group, noop_bench);
    fn noop_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("noop");
        g.bench_function("nothing", |b| b.iter(|| 1));
        g.finish();
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        // The macro-declared group is callable (body uses default config,
        // so keep the workload trivial).
        simple_group();
    }
}
