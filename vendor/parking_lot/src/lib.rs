//! Vendored, API-compatible subset of `parking_lot`.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s panic-free locking
//! API (no poisoning): a poisoned std lock simply yields its inner guard,
//! matching `parking_lot`'s behaviour of ignoring panics in other holders.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// A mutex whose `lock` never returns an error (no poisoning).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + core::fmt::Debug> core::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock without poisoning.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, lock still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 2);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
