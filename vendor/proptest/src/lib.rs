//! Vendored, API-compatible subset of `proptest`.
//!
//! Implements the slice of proptest this workspace uses: the
//! [`proptest!`] macro, `any::<T>()` for integers and byte arrays,
//! integer-range strategies, [`collection::vec`], `prop_map`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberate for an offline build:
//!
//! * cases are generated from a fixed deterministic RNG (reproducible
//!   runs; no persisted failure seeds);
//! * there is **no shrinking** — a failing case panics with the assertion
//!   message directly;
//! * rejected cases (`prop_assume!`) are retried up to a bounded number
//!   of attempts.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// The RNG handed to strategies.
    pub type TestRng = StdRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Types with a canonical "arbitrary value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rand::RngCore::next_u64(rng) as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rand::RngCore::next_u32(rng) & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.gen::<f64>()
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> [u8; N] {
            let mut out = [0u8; N];
            rand::RngCore::fill_bytes(rng, &mut out);
            out
        }
    }

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary(rng: &mut TestRng) -> Option<T> {
            if rand::RngCore::next_u32(rng) & 1 == 1 {
                Some(T::arbitrary(rng))
            } else {
                None
            }
        }
    }

    impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
        fn arbitrary(rng: &mut TestRng) -> (A, B) {
            (A::arbitrary(rng), B::arbitrary(rng))
        }
    }

    impl<A: Arbitrary, B: Arbitrary, C: Arbitrary> Arbitrary for (A, B, C) {
        fn arbitrary(rng: &mut TestRng) -> (A, B, C) {
            (A::arbitrary(rng), B::arbitrary(rng), C::arbitrary(rng))
        }
    }

    /// Strategy generating arbitrary values of `T` (see [`super::any`]).
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize);
}

/// Returns the canonical strategy for arbitrary values of `T`.
#[must_use]
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::default()
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// A length range for generated collections (half-open upstream
    /// semantics: `0..64` allows lengths 0 through 63).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with a length drawn from a [`SizeRange`].
    pub struct VecStrategy<E> {
        element: E,
        len: SizeRange,
    }

    /// Generates vectors whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<E: Strategy>(element: E, len: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<E::Value> {
            let n = rng.gen_range(self.len.lo..=self.len.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-case execution configuration and control flow.

    /// Per-`proptest!` block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single test case did not produce a pass/fail verdict.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` and should be retried.
        Reject,
    }
}

pub mod prelude {
    //! The glob-importable API surface.
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Rejects the current case (retried with fresh inputs) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares property-based tests: each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(clippy::redundant_closure_call)] // the closure scopes `return Err(Reject)`
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = <$crate::strategy::TestRng as ::rand::SeedableRng>::seed_from_u64(
                0x5EED ^ (stringify!($name).len() as u64) << 32,
            );
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).saturating_add(100);
            while passed < config.cases {
                assert!(
                    attempts < max_attempts,
                    "too many rejected cases in {}",
                    stringify!($name)
                );
                attempts += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn addition_commutes(a in any::<u32>(), b in any::<u32>()) {
            prop_assert_eq!(u64::from(a) + u64::from(b), u64::from(b) + u64::from(a));
        }

        #[test]
        fn vec_lengths_in_range(v in collection::vec(any::<u8>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn assume_retries(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn prop_map_applies(x in (0u64..100).prop_map(|v| v * 2)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert!(x < 200);
        }

        #[test]
        fn arrays_generate(bytes in any::<[u8; 32]>()) {
            prop_assert_eq!(bytes.len(), 32);
        }
    }

    #[test]
    #[should_panic]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100);
            }
        }
        inner();
    }
}
