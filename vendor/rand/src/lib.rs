//! Vendored, API-compatible subset of the `rand` crate.
//!
//! This build environment has no access to crates.io, so the workspace
//! ships the tiny slice of `rand`'s API that the Vuvuzela reproduction
//! actually uses: the [`RngCore`]/[`CryptoRng`]/[`SeedableRng`]/[`Rng`]
//! traits and a deterministic [`rngs::StdRng`].
//!
//! `StdRng` here is a ChaCha8 generator (the real `rand` uses ChaCha12),
//! seeded either from 32 bytes or via SplitMix64 expansion of a `u64`.
//! It is deterministic across platforms, which is all the simulation,
//! tests and benchmarks rely on — they never assume the exact stream of
//! the upstream crate, only reproducibility under a fixed seed.

#![forbid(unsafe_code)]

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Marker trait for generators suitable for cryptographic use.
///
/// As in upstream `rand`, this is a claim made by the implementor.
pub trait CryptoRng {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type, typically a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 as
    /// upstream `rand` does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele, Lea, Flood 2014).
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniform value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly from an RNG (the `Standard` distribution).
pub trait Standard {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision, as upstream.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a uniform integer can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Unbiased uniform draw in `[0, span)` by rejection (Lemire-style
/// threshold on the widening multiply).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (u128::from(x)) * (u128::from(span));
        let low = m as u64;
        if low >= span.wrapping_neg() % span || span.is_power_of_two() {
            return (m >> 64) as u64;
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{CryptoRng, RngCore, SeedableRng};

    /// A deterministic ChaCha8-based generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Clone)]
    pub struct StdRng {
        /// ChaCha state words 4..=11 (the key); constants and counter are
        /// reconstructed per block.
        key: [u32; 8],
        counter: u64,
        buf: [u8; 64],
        /// Next unread byte in `buf`; 64 means "refill".
        pos: usize,
    }

    impl core::fmt::Debug for StdRng {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            write!(f, "StdRng(..)")
        }
    }

    impl StdRng {
        fn refill(&mut self) {
            let mut x = [0u32; 16];
            x[0] = 0x6170_7865;
            x[1] = 0x3320_646e;
            x[2] = 0x7962_2d32;
            x[3] = 0x6b20_6574;
            x[4..12].copy_from_slice(&self.key);
            x[12] = self.counter as u32;
            x[13] = (self.counter >> 32) as u32;
            x[14] = 0;
            x[15] = 0;
            let input = x;
            for _ in 0..4 {
                // 8 rounds: 4 double-rounds.
                quarter(&mut x, 0, 4, 8, 12);
                quarter(&mut x, 1, 5, 9, 13);
                quarter(&mut x, 2, 6, 10, 14);
                quarter(&mut x, 3, 7, 11, 15);
                quarter(&mut x, 0, 5, 10, 15);
                quarter(&mut x, 1, 6, 11, 12);
                quarter(&mut x, 2, 7, 8, 13);
                quarter(&mut x, 3, 4, 9, 14);
            }
            for (i, (o, inp)) in x.iter().zip(input.iter()).enumerate() {
                self.buf[i * 4..(i + 1) * 4].copy_from_slice(&o.wrapping_add(*inp).to_le_bytes());
            }
            self.counter = self.counter.wrapping_add(1);
            self.pos = 0;
        }
    }

    fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(16);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(12);
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(8);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(7);
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut key = [0u32; 8];
            for (i, k) in key.iter_mut().enumerate() {
                let mut w = [0u8; 4];
                w.copy_from_slice(&seed[i * 4..(i + 1) * 4]);
                *k = u32::from_le_bytes(w);
            }
            StdRng {
                key,
                counter: 0,
                buf: [0; 64],
                pos: 64,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            let mut w = [0u8; 4];
            self.fill_bytes(&mut w);
            u32::from_le_bytes(w)
        }

        fn next_u64(&mut self) -> u64 {
            let mut w = [0u8; 8];
            self.fill_bytes(&mut w);
            u64::from_le_bytes(w)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut out = 0;
            while out < dest.len() {
                if self.pos == 64 {
                    self.refill();
                }
                let take = (dest.len() - out).min(64 - self.pos);
                dest[out..out + take].copy_from_slice(&self.buf[self.pos..self.pos + take]);
                self.pos += take;
                out += take;
            }
        }
    }

    impl CryptoRng for StdRng {}
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn fill_bytes_covers_every_byte() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 257];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: u64 = rng.gen_range(0..=5);
            assert!(w <= 5);
        }
        assert_eq!(rng.gen_range(4..=4u64), 4);
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn from_seed_uses_full_seed() {
        let mut s1 = [0u8; 32];
        let mut s2 = [0u8; 32];
        s2[31] = 1;
        let mut a = StdRng::from_seed(s1);
        let mut b = StdRng::from_seed(s2);
        assert_ne!(a.next_u64(), b.next_u64());
        s1[31] = 1;
        let mut c = StdRng::from_seed(s1);
        let mut d = StdRng::from_seed(s2);
        assert_eq!(c.next_u64(), d.next_u64());
    }
}
