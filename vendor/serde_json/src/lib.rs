//! Vendored, API-compatible subset of `serde_json`.
//!
//! Provides the [`Value`] tree, the [`json!`] macro (objects, arrays,
//! nested literals and expression values) and [`to_string_pretty`] —
//! the slice of `serde_json` the benchmark harness uses to write its
//! machine-readable artefacts. No `serde` derive support; conversions go
//! through `From<T> for Value` impls instead.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number: integer or floating point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
}

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (keys kept sorted for deterministic artefacts).
    Object(BTreeMap<String, Value>),
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::I64(v as i64)) }
        }
    )*};
}
from_signed!(i8, i16, i32, i64, isize);

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                let v = v as u64;
                if let Ok(i) = i64::try_from(v) {
                    Value::Number(Number::I64(i))
                } else {
                    Value::Number(Number::U64(v))
                }
            }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64, usize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F64(v))
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::F64(f64::from(v)))
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}
impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}
impl<T> From<Option<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Value::from)
    }
}
impl<T> From<Vec<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Value::from).collect())
    }
}
impl<T: Clone> From<&[T]> for Value
where
    Value: From<T>,
{
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Value::from).collect())
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::I64(v) => write!(f, "{v}"),
            Number::U64(v) => write!(f, "{v}"),
            Number::F64(v) if v.is_finite() => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            // JSON has no NaN/Infinity; serialize as null like serde_json
            // does for lossy writers.
            Number::F64(_) => write!(f, "null"),
        }
    }
}

impl Value {
    /// The value as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::I64(v)) => u64::try_from(*v).ok(),
            Value::Number(Number::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(v)) => Some(*v),
            Value::Number(Number::U64(v)) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::I64(v)) => Some(*v as f64),
            Value::Number(Number::U64(v)) => Some(*v as f64),
            Value::Number(Number::F64(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value as a `&str`, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        const PAD: &str = "  ";
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => escape_into(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&PAD.repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&PAD.repeat(indent));
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    out.push_str(&PAD.repeat(indent + 1));
                    escape_into(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&PAD.repeat(indent));
                out.push('}');
            }
        }
    }
}

/// Shared `null` used by the `Index` impls for missing keys, mirroring
/// `serde_json`'s panic-free indexing.
static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(map) => map.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Serialization error (this subset cannot actually fail).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error")
    }
}
impl std::error::Error for Error {}

/// Pretty-prints a [`Value`] with two-space indentation.
///
/// # Errors
///
/// Never fails in this subset; the `Result` mirrors the upstream API.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    value.write_pretty(&mut out, 0);
    Ok(out)
}

/// Builds a [`Value`] from JSON-like syntax: literals, `[...]` arrays,
/// `{"key": value}` objects, and arbitrary Rust expressions convertible
/// via `From<T> for Value`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {
        $crate::json_internal!(@array [] $($tt)+)
    };
    ({}) => { $crate::Value::Object(::std::collections::BTreeMap::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut map = ::std::collections::BTreeMap::new();
        $crate::json_internal!(@object map () $($tt)+);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

/// Internal token-muncher for [`json!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- arrays: collect element values into a Vec ----
    (@array [$($elems:expr),*]) => {
        $crate::Value::Array(::std::vec![$($elems),*])
    };
    (@array [$($elems:expr),*] { $($obj:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!({ $($obj)* })] $($($rest)*)?)
    };
    (@array [$($elems:expr),*] [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!([ $($arr)* ])] $($($rest)*)?)
    };
    (@array [$($elems:expr),*] null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Null] $($($rest)*)?)
    };
    (@array [$($elems:expr),*] $value:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::from($value)] $($($rest)*)?)
    };
    // ---- objects: `"key": value` pairs; values may be nested literals ----
    (@object $map:ident ()) => {};
    (@object $map:ident () $key:literal : { $($obj:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert(::std::string::String::from($key), $crate::json!({ $($obj)* }));
        $crate::json_internal!(@object $map () $($($rest)*)?);
    };
    (@object $map:ident () $key:literal : [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert(::std::string::String::from($key), $crate::json!([ $($arr)* ]));
        $crate::json_internal!(@object $map () $($($rest)*)?);
    };
    (@object $map:ident () $key:literal : null $(, $($rest:tt)*)?) => {
        $map.insert(::std::string::String::from($key), $crate::Value::Null);
        $crate::json_internal!(@object $map () $($($rest)*)?);
    };
    (@object $map:ident () $key:literal : $value:expr , $($rest:tt)*) => {
        $map.insert(::std::string::String::from($key), $crate::Value::from($value));
        $crate::json_internal!(@object $map () $($rest)*);
    };
    (@object $map:ident () $key:literal : $value:expr) => {
        $map.insert(::std::string::String::from($key), $crate::Value::from($value));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_strings() {
        assert_eq!(json!(3u64), Value::Number(Number::I64(3)));
        assert_eq!(json!(2.5), Value::Number(Number::F64(2.5)));
        assert_eq!(json!("hi"), Value::String("hi".into()));
        assert_eq!(json!(true), Value::Bool(true));
        assert_eq!(json!(null), Value::Null);
        let opt: Option<u64> = None;
        assert_eq!(json!(opt), Value::Null);
        assert_eq!(json!(Some(4u32)), Value::Number(Number::I64(4)));
    }

    #[test]
    fn objects_nested_and_exprs() {
        let rows = vec![json!({"a": 1}), json!({"a": 2})];
        let n = 7u64;
        let v = json!({
            "rows": rows,
            "count": n + 1,
            "nested": { "x": 1.5, "y": [1, 2, 3] },
            "list": (0..3).map(|i| json!({"i": i})).collect::<Vec<_>>(),
            "nothing": null,
        });
        let s = to_string_pretty(&v).expect("serializes");
        assert!(s.contains("\"count\": 8"));
        assert!(s.contains("\"x\": 1.5"));
        assert!(s.contains("\"nothing\": null"));
        assert!(s.contains("\"i\": 2"));
    }

    #[test]
    fn large_u64_survives() {
        let v = json!(u64::MAX);
        assert_eq!(v, Value::Number(Number::U64(u64::MAX)));
        assert_eq!(
            to_string_pretty(&v).expect("serializes"),
            u64::MAX.to_string()
        );
    }

    #[test]
    fn pretty_output_shape() {
        let v = json!({"b": [1], "a": "x\"y"});
        let s = to_string_pretty(&v).expect("serializes");
        // Keys sorted, strings escaped, two-space indent.
        assert_eq!(s, "{\n  \"a\": \"x\\\"y\",\n  \"b\": [\n    1\n  ]\n}");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&json!({})).expect("ok"), "{}");
        assert_eq!(to_string_pretty(&json!([])).expect("ok"), "[]");
    }

    #[test]
    fn float_formatting_keeps_integral_marker() {
        // 7e6 must not serialize as a bare integer-looking float ambiguity.
        let s = to_string_pretty(&json!(7e6)).expect("ok");
        assert_eq!(s, "7000000.0");
    }
}
