//! Vendored, API-compatible subset of `serde_json`.
//!
//! Provides the [`Value`] tree, the [`json!`] macro (objects, arrays,
//! nested literals and expression values), [`to_string_pretty`], and
//! [`from_str`] — the slice of `serde_json` the benchmark harness uses
//! to write and read back its machine-readable artefacts (the
//! bench-regression gate parses committed baselines). No `serde` derive
//! support; conversions go through `From<T> for Value` impls instead.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number: integer or floating point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
}

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (keys kept sorted for deterministic artefacts).
    Object(BTreeMap<String, Value>),
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::I64(v as i64)) }
        }
    )*};
}
from_signed!(i8, i16, i32, i64, isize);

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                let v = v as u64;
                if let Ok(i) = i64::try_from(v) {
                    Value::Number(Number::I64(i))
                } else {
                    Value::Number(Number::U64(v))
                }
            }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64, usize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F64(v))
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::F64(f64::from(v)))
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}
impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}
impl<T> From<Option<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Value::from)
    }
}
impl<T> From<Vec<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Value::from).collect())
    }
}
impl<T: Clone> From<&[T]> for Value
where
    Value: From<T>,
{
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Value::from).collect())
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::I64(v) => write!(f, "{v}"),
            Number::U64(v) => write!(f, "{v}"),
            Number::F64(v) if v.is_finite() => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            // JSON has no NaN/Infinity; serialize as null like serde_json
            // does for lossy writers.
            Number::F64(_) => write!(f, "null"),
        }
    }
}

impl Value {
    /// The value as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::I64(v)) => u64::try_from(*v).ok(),
            Value::Number(Number::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(v)) => Some(*v),
            Value::Number(Number::U64(v)) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::I64(v)) => Some(*v as f64),
            Value::Number(Number::U64(v)) => Some(*v as f64),
            Value::Number(Number::F64(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value as a `&str`, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        const PAD: &str = "  ";
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => escape_into(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&PAD.repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&PAD.repeat(indent));
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    out.push_str(&PAD.repeat(indent + 1));
                    escape_into(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&PAD.repeat(indent));
                out.push('}');
            }
        }
    }
}

/// Shared `null` used by the `Index` impls for missing keys, mirroring
/// `serde_json`'s panic-free indexing.
static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(map) => map.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error: {}", self.0)
    }
}
impl std::error::Error for Error {}

/// Parses a JSON document into a [`Value`].
///
/// Supports the full JSON grammar the writer half emits (and standard
/// JSON beyond it): all scalar types, nested arrays/objects, string
/// escapes including `\uXXXX` with surrogate pairs.
///
/// # Errors
///
/// Returns [`Error`] (with a byte offset) on malformed input or
/// trailing non-whitespace.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(value)
}

/// Recursive-descent JSON parser over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, what: &str) -> Error {
        Error(format!("{what} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek().ok_or_else(|| self.error("unexpected end"))? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.error("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let code = u16::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self
                .peek()
                .ok_or_else(|| self.error("unterminated string"))?
            {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?
                    {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX follows.
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000
                                    + ((u32::from(hi) - 0xD800) << 10)
                                    + (u32::from(lo) - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(u32::from(hi))
                                    .ok_or_else(|| self.error("invalid codepoint"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                    self.pos += 1;
                }
                byte => {
                    if byte < 0x20 {
                        return Err(self.error("unescaped control character"));
                    }
                    // Consume one UTF-8 character: the input arrived as a
                    // &str and we only ever advance by whole characters,
                    // so `pos` sits on a boundary and the leading byte
                    // gives the sequence length — O(1) per character
                    // instead of re-validating the whole tail.
                    let len = match byte {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| self.error("unterminated string"))?;
                    let piece =
                        std::str::from_utf8(chunk).map_err(|_| self.error("invalid utf-8"))?;
                    out.push_str(piece);
                    self.pos += len;
                }
            }
        }
    }

    /// Consumes `[0-9]*`, returning how many digits were seen.
    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // JSON integer part: "0" alone or a nonzero digit followed by
        // more digits — a leading zero must not be followed by a digit.
        let leading_zero = self.peek() == Some(b'0');
        let int_digits = self.digits();
        if int_digits == 0 {
            return Err(self.error("expected digit"));
        }
        if leading_zero && int_digits > 1 {
            return Err(self.error("leading zero"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if self.digits() == 0 {
                return Err(self.error("expected digit after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(self.error("expected digit in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| self.error("invalid number"))
    }
}

/// Pretty-prints a [`Value`] with two-space indentation.
///
/// # Errors
///
/// Never fails in this subset; the `Result` mirrors the upstream API.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    value.write_pretty(&mut out, 0);
    Ok(out)
}

/// Builds a [`Value`] from JSON-like syntax: literals, `[...]` arrays,
/// `{"key": value}` objects, and arbitrary Rust expressions convertible
/// via `From<T> for Value`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {
        $crate::json_internal!(@array [] $($tt)+)
    };
    ({}) => { $crate::Value::Object(::std::collections::BTreeMap::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut map = ::std::collections::BTreeMap::new();
        $crate::json_internal!(@object map () $($tt)+);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

/// Internal token-muncher for [`json!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- arrays: collect element values into a Vec ----
    (@array [$($elems:expr),*]) => {
        $crate::Value::Array(::std::vec![$($elems),*])
    };
    (@array [$($elems:expr),*] { $($obj:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!({ $($obj)* })] $($($rest)*)?)
    };
    (@array [$($elems:expr),*] [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!([ $($arr)* ])] $($($rest)*)?)
    };
    (@array [$($elems:expr),*] null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Null] $($($rest)*)?)
    };
    (@array [$($elems:expr),*] $value:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::from($value)] $($($rest)*)?)
    };
    // ---- objects: `"key": value` pairs; values may be nested literals ----
    (@object $map:ident ()) => {};
    (@object $map:ident () $key:literal : { $($obj:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert(::std::string::String::from($key), $crate::json!({ $($obj)* }));
        $crate::json_internal!(@object $map () $($($rest)*)?);
    };
    (@object $map:ident () $key:literal : [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert(::std::string::String::from($key), $crate::json!([ $($arr)* ]));
        $crate::json_internal!(@object $map () $($($rest)*)?);
    };
    (@object $map:ident () $key:literal : null $(, $($rest:tt)*)?) => {
        $map.insert(::std::string::String::from($key), $crate::Value::Null);
        $crate::json_internal!(@object $map () $($($rest)*)?);
    };
    (@object $map:ident () $key:literal : $value:expr , $($rest:tt)*) => {
        $map.insert(::std::string::String::from($key), $crate::Value::from($value));
        $crate::json_internal!(@object $map () $($rest)*);
    };
    (@object $map:ident () $key:literal : $value:expr) => {
        $map.insert(::std::string::String::from($key), $crate::Value::from($value));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_strings() {
        assert_eq!(json!(3u64), Value::Number(Number::I64(3)));
        assert_eq!(json!(2.5), Value::Number(Number::F64(2.5)));
        assert_eq!(json!("hi"), Value::String("hi".into()));
        assert_eq!(json!(true), Value::Bool(true));
        assert_eq!(json!(null), Value::Null);
        let opt: Option<u64> = None;
        assert_eq!(json!(opt), Value::Null);
        assert_eq!(json!(Some(4u32)), Value::Number(Number::I64(4)));
    }

    #[test]
    fn objects_nested_and_exprs() {
        let rows = vec![json!({"a": 1}), json!({"a": 2})];
        let n = 7u64;
        let v = json!({
            "rows": rows,
            "count": n + 1,
            "nested": { "x": 1.5, "y": [1, 2, 3] },
            "list": (0..3).map(|i| json!({"i": i})).collect::<Vec<_>>(),
            "nothing": null,
        });
        let s = to_string_pretty(&v).expect("serializes");
        assert!(s.contains("\"count\": 8"));
        assert!(s.contains("\"x\": 1.5"));
        assert!(s.contains("\"nothing\": null"));
        assert!(s.contains("\"i\": 2"));
    }

    #[test]
    fn large_u64_survives() {
        let v = json!(u64::MAX);
        assert_eq!(v, Value::Number(Number::U64(u64::MAX)));
        assert_eq!(
            to_string_pretty(&v).expect("serializes"),
            u64::MAX.to_string()
        );
    }

    #[test]
    fn pretty_output_shape() {
        let v = json!({"b": [1], "a": "x\"y"});
        let s = to_string_pretty(&v).expect("serializes");
        // Keys sorted, strings escaped, two-space indent.
        assert_eq!(s, "{\n  \"a\": \"x\\\"y\",\n  \"b\": [\n    1\n  ]\n}");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&json!({})).expect("ok"), "{}");
        assert_eq!(to_string_pretty(&json!([])).expect("ok"), "[]");
    }

    #[test]
    fn parser_roundtrips_writer_output() {
        let v = json!({
            "name": "mixed \"schedule\"",
            "speedup": 2.54,
            "configs": [
                {"workers": 1, "ok": true, "skip": null},
                {"workers": 2, "rate": 1.5e3}
            ],
            "count": 12,
            "big": u64::MAX,
            "neg": -7,
        });
        let text = to_string_pretty(&v).expect("serializes");
        let back = from_str(&text).expect("parses");
        assert_eq!(back, v);
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v = from_str(r#"{"s": "a\n\t\\\"z", "pair": "😀", "u": "é"}"#).expect("parses");
        assert_eq!(v["s"].as_str(), Some("a\n\t\\\"z"));
        assert_eq!(v["pair"].as_str(), Some("😀"));
        assert_eq!(v["u"].as_str(), Some("é"));
        let surrogate = from_str(r#""\ud83d\ude00 \u00e9""#).expect("parses");
        assert_eq!(surrogate.as_str(), Some("😀 é"));
        assert!(from_str(r#""\ud83d""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str("\"unterminated").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str(r#"{"a" 1}"#).is_err());
        // JSON number grammar: no leading zeros, no bare trailing
        // point, no empty exponent.
        assert!(from_str("01").is_err());
        assert!(from_str("-01").is_err());
        assert!(from_str("1.").is_err());
        assert!(from_str("1e").is_err());
        assert!(from_str("1e+").is_err());
        assert!(from_str("-").is_err());
        assert_eq!(from_str("0").expect("zero"), Value::Number(Number::I64(0)));
        assert_eq!(from_str("-0.5").expect("float").as_f64(), Some(-0.5));
        assert_eq!(from_str("10").expect("ten"), Value::Number(Number::I64(10)));
    }

    #[test]
    fn parser_number_types() {
        assert_eq!(from_str("3").expect("int"), Value::Number(Number::I64(3)));
        assert_eq!(
            from_str("18446744073709551615").expect("u64"),
            Value::Number(Number::U64(u64::MAX))
        );
        assert_eq!(from_str("-2.5e-1").expect("float").as_f64(), Some(-0.25));
    }

    #[test]
    fn float_formatting_keeps_integral_marker() {
        // 7e6 must not serialize as a bare integer-looking float ambiguity.
        let s = to_string_pretty(&json!(7e6)).expect("ok");
        assert_eq!(s, "7000000.0");
    }
}
